"""Platform builders: meshes, lines, irregular fabrics, and CRISP.

The paper stresses that the mapping algorithm "works on a variety of
platforms" — unlike region-based approaches it does not assume a
homogeneous mesh (Section II).  These builders provide the platform
zoo used by the tests and experiments:

* :func:`mesh` / :func:`torus` — classic NoC grids (one element per
  router) with a configurable element-type pattern,
* :func:`line` — a degenerate pipeline topology,
* :func:`irregular` — a seeded random partial mesh, exercising the
  "heterogeneous or irregular architectures" claim,
* :func:`fat_tree` — an indirect tree fabric whose links widen toward
  the root (the classic datacenter/NoC hierarchy: elements at the
  leaves, routers in a balanced arity-ary tree),
* :func:`crisp` — a reconstruction of the CRISP platform of Fig. 6:
  one ARM, one FPGA, and five packages of 9 DSPs + 2 memories + 1
  hardware test unit, chained by a NoC that is deliberately less
  connected than a full mesh.

Two virtual-channel budgets apply everywhere: ``virtual_channels`` for
router—router links (the scarce NoC resource) and
``endpoint_virtual_channels`` for element—router links (a network
interface multiplexes many logical ports, so the first hop is rarely
the bottleneck).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence

from repro.arch.elements import (
    ElementType,
    ProcessingElement,
    Router,
    default_capacity,
)
from repro.arch.topology import Platform

#: Signature of the per-tile element factory used by the grid builders.
ElementFactory = Callable[[int, int], ProcessingElement]

#: default virtual channels on element—router links
ENDPOINT_VCS = 16
#: default bandwidth multiplier for element—router links (a network
#: interface is provisioned wider than one NoC link)
ENDPOINT_BANDWIDTH_FACTOR = 4.0


def _dsp_factory(row: int, col: int) -> ProcessingElement:
    return ProcessingElement(
        name=f"dsp_{row}_{col}",
        kind=ElementType.DSP,
        capacity=default_capacity(ElementType.DSP),
        position=(float(col), float(row)),
    )


def mesh(
    rows: int,
    cols: int,
    element_factory: ElementFactory = _dsp_factory,
    virtual_channels: int = 4,
    bandwidth: float = 100.0,
    name: str | None = None,
    endpoint_virtual_channels: int = ENDPOINT_VCS,
    endpoint_bandwidth: float | None = None,
) -> Platform:
    """A ``rows`` x ``cols`` NoC mesh with one element per router."""
    if rows < 1 or cols < 1:
        raise ValueError("mesh dimensions must be positive")
    platform = Platform(name or f"mesh_{rows}x{cols}")
    routers = {}
    for row in range(rows):
        for col in range(cols):
            router = platform.add_router(
                Router(f"r_{row}_{col}", position=(float(col), float(row)))
            )
            routers[(row, col)] = router
            element = platform.add_element(element_factory(row, col))
            platform.add_link(
                element, router, endpoint_virtual_channels,
                endpoint_bandwidth if endpoint_bandwidth is not None else bandwidth,
            )
    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                platform.add_link(
                    routers[(row, col)], routers[(row, col + 1)],
                    virtual_channels, bandwidth,
                )
            if row + 1 < rows:
                platform.add_link(
                    routers[(row, col)], routers[(row + 1, col)],
                    virtual_channels, bandwidth,
                )
    return platform.freeze()


def torus(
    rows: int,
    cols: int,
    element_factory: ElementFactory = _dsp_factory,
    virtual_channels: int = 4,
    bandwidth: float = 100.0,
    endpoint_virtual_channels: int = ENDPOINT_VCS,
    endpoint_bandwidth: float | None = None,
) -> Platform:
    """A mesh with wrap-around links in both dimensions."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs at least 3x3 to avoid duplicate links")
    platform = Platform(f"torus_{rows}x{cols}")
    routers = {}
    for row in range(rows):
        for col in range(cols):
            router = platform.add_router(
                Router(f"r_{row}_{col}", position=(float(col), float(row)))
            )
            routers[(row, col)] = router
            element = platform.add_element(element_factory(row, col))
            platform.add_link(
                element, router, endpoint_virtual_channels,
                endpoint_bandwidth if endpoint_bandwidth is not None else bandwidth,
            )
    for row in range(rows):
        for col in range(cols):
            platform.add_link(
                routers[(row, col)], routers[(row, (col + 1) % cols)],
                virtual_channels, bandwidth,
            )
            platform.add_link(
                routers[(row, col)], routers[((row + 1) % rows, col)],
                virtual_channels, bandwidth,
            )
    return platform.freeze()


def line(
    length: int,
    element_factory: ElementFactory = _dsp_factory,
    virtual_channels: int = 4,
    bandwidth: float = 100.0,
    endpoint_virtual_channels: int = ENDPOINT_VCS,
    endpoint_bandwidth: float | None = None,
) -> Platform:
    """A 1 x ``length`` pipeline of router+element tiles."""
    return mesh(
        1, length, element_factory, virtual_channels, bandwidth,
        name=f"line_{length}",
        endpoint_virtual_channels=endpoint_virtual_channels,
        endpoint_bandwidth=endpoint_bandwidth,
    )


def irregular(
    rows: int,
    cols: int,
    drop_fraction: float = 0.25,
    seed: int = 0,
    element_factory: ElementFactory = _dsp_factory,
    virtual_channels: int = 4,
    bandwidth: float = 100.0,
    endpoint_virtual_channels: int = ENDPOINT_VCS,
    endpoint_bandwidth: float | None = None,
) -> Platform:
    """A mesh with a random fraction of router—router links removed.

    Links are only removed when the platform stays connected, so the
    result is always a usable (if lopsided) fabric.  Deterministic for
    a given ``seed``.
    """
    if not 0 <= drop_fraction < 1:
        raise ValueError("drop_fraction must be in [0, 1)")
    rng = random.Random(seed)
    platform = Platform(f"irregular_{rows}x{cols}_s{seed}")
    routers = {}
    for row in range(rows):
        for col in range(cols):
            router = platform.add_router(
                Router(f"r_{row}_{col}", position=(float(col), float(row)))
            )
            routers[(row, col)] = router
            element = platform.add_element(element_factory(row, col))
            platform.add_link(
                element, router, endpoint_virtual_channels,
                endpoint_bandwidth if endpoint_bandwidth is not None else bandwidth,
            )
    mesh_links = []
    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                mesh_links.append(((row, col), (row, col + 1)))
            if row + 1 < rows:
                mesh_links.append(((row, col), (row + 1, col)))
    rng.shuffle(mesh_links)
    to_drop = int(len(mesh_links) * drop_fraction)
    kept = set(map(tuple, mesh_links))
    # Tentatively drop links, keeping the router graph connected.
    for candidate in mesh_links:
        if to_drop == 0:
            break
        trial = kept - {candidate}
        if _routers_connected(routers, trial):
            kept = trial
            to_drop -= 1
    for a, b in sorted(kept):
        platform.add_link(routers[a], routers[b], virtual_channels, bandwidth)
    return platform.freeze()


def _routers_connected(routers: dict, links: set) -> bool:
    if not routers:
        return True
    adjacency: dict = {key: [] for key in routers}
    for a, b in links:
        adjacency[a].append(b)
        adjacency[b].append(a)
    start = next(iter(routers))
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return len(seen) == len(routers)


# ---------------------------------------------------------------------------
# The CRISP platform (paper Fig. 6)
# ---------------------------------------------------------------------------

#: Tile pattern of one CRISP package: a 3x4 grid of 9 DSPs, 2 memory
#: tiles and 1 hardware test unit.  Memories sit mid-package and the
#: test unit in a corner, loosely following the die photo of Fig. 6.
_PACKAGE_PATTERN: Sequence[Sequence[ElementType]] = (
    (ElementType.DSP, ElementType.DSP, ElementType.DSP, ElementType.TEST),
    (ElementType.DSP, ElementType.MEMORY, ElementType.MEMORY, ElementType.DSP),
    (ElementType.DSP, ElementType.DSP, ElementType.DSP, ElementType.DSP),
)

PACKAGE_ROWS = len(_PACKAGE_PATTERN)
PACKAGE_COLS = len(_PACKAGE_PATTERN[0])
CRISP_PACKAGES = 5
CRISP_DSP_COUNT = 45


def crisp(
    virtual_channels: int = 4,
    bandwidth: float = 100.0,
    packages: int = CRISP_PACKAGES,
    endpoint_virtual_channels: int = ENDPOINT_VCS,
    endpoint_bandwidth: float | None = None,
) -> Platform:
    """Reconstruct the CRISP MPSoC of paper Fig. 6.

    One ARM926 general-purpose processor (right), one FPGA (left) and
    ``packages`` packages, each a 3x4 tile grid of 9 DSPs, 2 memories
    and 1 hardware test unit on a router mesh.  Consecutive packages
    are bridged by only two inter-package links (rows 0 and 2), which
    makes the fabric "less connected [than] a fully meshed platform"
    (Section IV), exactly the property the fragmentation experiments
    exploit.
    """
    if packages < 1:
        raise ValueError("need at least one package")
    platform = Platform(f"crisp_{packages}pkg")
    routers: dict[tuple[int, int, int], Router] = {}

    for pkg in range(packages):
        x_offset = 1 + pkg * (PACKAGE_COLS + 1)
        for row in range(PACKAGE_ROWS):
            for col in range(PACKAGE_COLS):
                router = platform.add_router(
                    Router(
                        f"p{pkg}_r_{row}_{col}",
                        position=(float(x_offset + col), float(row)),
                    )
                )
                routers[(pkg, row, col)] = router
                kind = _PACKAGE_PATTERN[row][col]
                label = {
                    ElementType.DSP: "dsp",
                    ElementType.MEMORY: "mem",
                    ElementType.TEST: "test",
                }[kind]
                element = ProcessingElement(
                    name=f"p{pkg}_{label}_{row}_{col}",
                    kind=kind,
                    capacity=default_capacity(kind),
                    position=(float(x_offset + col), float(row)),
                )
                platform.add_element(element)
                platform.add_link(
                    element, router, endpoint_virtual_channels,
                    endpoint_bandwidth if endpoint_bandwidth is not None else bandwidth,
                )
        # intra-package mesh links
        for row in range(PACKAGE_ROWS):
            for col in range(PACKAGE_COLS):
                if col + 1 < PACKAGE_COLS:
                    platform.add_link(
                        routers[(pkg, row, col)], routers[(pkg, row, col + 1)],
                        virtual_channels, bandwidth,
                    )
                if row + 1 < PACKAGE_ROWS:
                    platform.add_link(
                        routers[(pkg, row, col)], routers[(pkg, row + 1, col)],
                        virtual_channels, bandwidth,
                    )

    # inter-package bridges: two links per package boundary (rows 0, 2)
    for pkg in range(packages - 1):
        for row in (0, PACKAGE_ROWS - 1):
            platform.add_link(
                routers[(pkg, row, PACKAGE_COLS - 1)],
                routers[(pkg + 1, row, 0)],
                virtual_channels, bandwidth,
            )

    # FPGA on the left, attached to package 0's left edge
    fpga_router = platform.add_router(Router("fpga_r", position=(0.0, 1.0)))
    fpga = platform.add_element(
        ProcessingElement(
            name="fpga",
            kind=ElementType.FPGA,
            capacity=default_capacity(ElementType.FPGA),
            position=(0.0, 1.0),
        )
    )
    platform.add_link(
        fpga, fpga_router, endpoint_virtual_channels,
        endpoint_bandwidth if endpoint_bandwidth is not None else bandwidth,
    )
    platform.add_link(fpga_router, routers[(0, 0, 0)], virtual_channels, bandwidth)
    platform.add_link(
        fpga_router, routers[(0, PACKAGE_ROWS - 1, 0)], virtual_channels, bandwidth
    )

    # ARM on the right, attached to the last package's right edge
    arm_x = 1 + packages * (PACKAGE_COLS + 1)
    arm_router = platform.add_router(Router("arm_r", position=(float(arm_x), 1.0)))
    arm = platform.add_element(
        ProcessingElement(
            name="arm",
            kind=ElementType.GPP,
            capacity=default_capacity(ElementType.GPP),
            position=(float(arm_x), 1.0),
        )
    )
    platform.add_link(
        arm, arm_router, endpoint_virtual_channels,
        endpoint_bandwidth if endpoint_bandwidth is not None else bandwidth,
    )
    last = packages - 1
    platform.add_link(
        arm_router, routers[(last, 0, PACKAGE_COLS - 1)],
        virtual_channels, bandwidth,
    )
    platform.add_link(
        arm_router, routers[(last, PACKAGE_ROWS - 1, PACKAGE_COLS - 1)],
        virtual_channels, bandwidth,
    )
    return platform.freeze()


def fat_tree(
    leaves: int,
    arity: int = 4,
    element_factory: ElementFactory = _dsp_factory,
    virtual_channels: int = 4,
    bandwidth: float = 100.0,
    fatness: float = 2.0,
    endpoint_virtual_channels: int = ENDPOINT_VCS,
    endpoint_bandwidth: float | None = None,
) -> Platform:
    """A fat tree: ``leaves`` elements under a balanced router tree.

    Each leaf router hosts one element; every ``arity`` routers of a
    level share one parent, up to a single root.  Router—router links
    *widen* toward the root — the level-``l`` uplink carries
    ``virtual_channels * 2**l`` virtual channels and
    ``bandwidth * fatness**l`` bandwidth — which is what makes the
    tree "fat": aggregate capacity is preserved up the hierarchy
    instead of funneling into a root bottleneck.  Any hop count
    between two leaves is at most twice the tree depth, so large
    fabrics are *shallower* than the equivalent mesh — the topology
    axis the scenario sweeps use to contrast with grid diameter.

    Deterministic: no randomness, stable names (``dsp_0_<i>`` leaves,
    ``ft_r<level>_<index>`` routers).
    """
    if leaves < 2:
        raise ValueError("fat tree needs at least 2 leaves")
    if arity < 2:
        raise ValueError("fat tree arity must be at least 2")
    if fatness < 1.0:
        raise ValueError("fatness must be at least 1.0 (widening links)")
    platform = Platform(f"fat_tree_{leaves}a{arity}")
    # leaf level: one router + one element per leaf
    level_routers: list[Router] = []
    for index in range(leaves):
        router = platform.add_router(
            Router(f"ft_r0_{index}", position=(float(index), 0.0))
        )
        level_routers.append(router)
        element = platform.add_element(element_factory(0, index))
        platform.add_link(
            element, router, endpoint_virtual_channels,
            endpoint_bandwidth if endpoint_bandwidth is not None else bandwidth,
        )
    # upper levels: every `arity` children share one parent; the
    # child->parent link is the fat one (wider per level)
    level = 0
    while len(level_routers) > 1:
        level += 1
        uplink_vcs = virtual_channels * 2 ** (level - 1)
        uplink_bandwidth = bandwidth * fatness ** (level - 1)
        parents: list[Router] = []
        for start in range(0, len(level_routers), arity):
            children = level_routers[start:start + arity]
            x = sum(r.position[0] for r in children) / len(children)
            parent = platform.add_router(
                Router(f"ft_r{level}_{len(parents)}",
                       position=(x, float(level)))
            )
            parents.append(parent)
            for child in children:
                platform.add_link(
                    child, parent, uplink_vcs, uplink_bandwidth
                )
        level_routers = parents
    return platform.freeze()


def heterogeneous_mesh(
    rows: int,
    cols: int,
    pattern: Sequence[ElementType] = (
        ElementType.DSP,
        ElementType.DSP,
        ElementType.DSP,
        ElementType.MEMORY,
    ),
    virtual_channels: int = 4,
    bandwidth: float = 100.0,
    endpoint_virtual_channels: int = ENDPOINT_VCS,
    endpoint_bandwidth: float | None = None,
) -> Platform:
    """A mesh whose element types cycle through ``pattern`` row-major."""
    if not pattern:
        raise ValueError("pattern must not be empty")

    def factory(row: int, col: int) -> ProcessingElement:
        kind = pattern[(row * cols + col) % len(pattern)]
        label = kind.value
        return ProcessingElement(
            name=f"{label}_{row}_{col}",
            kind=kind,
            capacity=default_capacity(kind),
            position=(float(col), float(row)),
        )

    return mesh(
        rows, cols, factory, virtual_channels, bandwidth,
        name=f"hetmesh_{rows}x{cols}",
        endpoint_virtual_channels=endpoint_virtual_channels,
        endpoint_bandwidth=endpoint_bandwidth,
    )
