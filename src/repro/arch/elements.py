"""Processing elements and routers: the nodes of the platform graph.

The platform provides resources "through the processing elements E,
which are connected with the links L" (paper Section III).  Elements are
typed — the CRISP platform of Fig. 6 mixes an ARM (general-purpose
processor), an FPGA, DSP cores, memory tiles and hardware test units —
and each element carries a capacity :class:`~repro.arch.resources.ResourceVector`.

Routers are modelled as separate nodes so that hop counts and link
contention match a network-on-chip: element—router and router—router
links both count as hops for the distance/route accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.arch.resources import ResourceVector


class ElementType(enum.Enum):
    """The heterogeneous element classes appearing in the CRISP platform."""

    GPP = "gpp"          #: general-purpose processor (the ARM926)
    DSP = "dsp"          #: digital signal processor core
    FPGA = "fpga"        #: reconfigurable fabric
    MEMORY = "memory"    #: on-chip memory tile
    TEST = "test"        #: hardware test unit (dependability support)
    IO = "io"            #: dedicated I/O interface tile

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ProcessingElement:
    """A typed compute/storage tile with a fixed resource capacity.

    Identity is the ``name``; two elements with the same name are the
    same element.  ``capacity`` is the total the element offers when
    completely free; the run-time free amount is tracked by
    :class:`repro.arch.state.AllocationState`.
    """

    name: str
    kind: ElementType
    capacity: ResourceVector
    #: free-form coordinates for visualisation / debugging (not used by
    #: any algorithm — the algorithms only see graph topology).
    position: tuple[float, float] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("processing element needs a non-empty name")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<PE {self.name} ({self.kind.value})>"


@dataclass(frozen=True)
class Router:
    """A NoC router: pure interconnect, offers no task resources."""

    name: str
    position: tuple[float, float] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("router needs a non-empty name")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<Router {self.name}>"


#: Nodes of the platform graph.
Node = ProcessingElement | Router


def is_element(node: Node) -> bool:
    """True for nodes that can host tasks (i.e. processing elements)."""
    return isinstance(node, ProcessingElement)


def default_capacity(kind: ElementType) -> ResourceVector:
    """Reference capacities per element class.

    These mirror the qualitative description of the CRISP tiles: DSPs
    are compute-heavy with modest local memory, memory tiles offer
    storage only, the ARM is a smaller general-purpose core that also
    exposes an I/O interface, and the FPGA offers fabric plus I/O.
    Quantities are abstract units; only ratios matter to the
    experiments.
    """
    table = {
        ElementType.DSP: ResourceVector(cycles=100, memory=32),
        ElementType.GPP: ResourceVector(cycles=60, memory=256, io=16),
        ElementType.FPGA: ResourceVector(fabric=100, memory=128, io=32),
        ElementType.MEMORY: ResourceVector(memory=256),
        ElementType.TEST: ResourceVector(cycles=10),
        ElementType.IO: ResourceVector(io=8, memory=16),
    }
    return table[kind]
