"""Generation-stamped scratch buffers for the admission hot loops.

Every allocation attempt used to rebuild its working arrays from
scratch: the BFS router allocated a fresh ``parents`` list per channel,
the ring search a visited byte-mask per origin per layer, Dijkstra a
distance dict per path.  Under admission churn those allocations (and
the garbage they feed the collector) are a measurable fraction of a
*failed* attempt's cost — exactly the case the fast path wants cheap.

A :class:`ScratchPool` hands out preallocated arrays with **lazy
clearing**: instead of resetting ``n`` cells per use, each array
carries a parallel ``stamp`` array and a generation counter.  A cell
is valid only when ``stamp[i] == generation``; acquiring the array
bumps the generation, which invalidates every cell in O(1).  This is
the array-reuse analogue of the allocation state's capacity epochs —
stale data is never cleared, only outdated.

Concurrency contract: a pool belongs to one
:class:`~repro.arch.state.AllocationState` (one manager), whose
allocation pipeline runs one search at a time.  Callers that cannot
guarantee exclusive, non-interleaved use of a named scratch (e.g. two
incremental searches advanced in lockstep) must fall back to fresh
arrays — :class:`~repro.core.search.RingSearch` only opts in when the
mapping phase drives it.
"""

from __future__ import annotations

import functools
from collections import deque

#: zero-fill templates above this size are built ad hoc instead of
#: being memoized (platforms are small; this only guards pathology)
_ZERO_CACHE_LIMIT = 1 << 16


@functools.lru_cache(maxsize=32)
def _zeros(size: int) -> bytes:
    return bytes(size)


class StampedArrays:
    """A family of reusable arrays invalidated wholesale per acquire.

    ``acquire(size)`` returns ``(data, stamp, generation)``; a cell
    ``data[i]`` is meaningful only while ``stamp[i] == generation``.
    Callers write ``stamp[i] = generation`` together with ``data[i]``.
    Generations are plain ints (never wrap), so a stale stamp can
    never collide with a live generation.
    """

    __slots__ = ("data", "stamp", "generation")

    def __init__(self) -> None:
        self.data: list[int] = []
        self.stamp: list[int] = []
        self.generation = 0

    def acquire(self, size: int) -> tuple[list, list[int], int]:
        if len(self.data) < size:
            grow = size - len(self.data)
            self.data.extend([0] * grow)
            self.stamp.extend([-1] * grow)
        self.generation += 1
        return self.data, self.stamp, self.generation


class ScratchPool:
    """Named scratch buffers shared by the allocation hot loops.

    One pool per allocation state; every named scratch is exclusive to
    one call site (the name *is* the reservation).  Flavours:

    * :meth:`stamped` — one :class:`StampedArrays` per name (router
      parents/dist arrays);
    * :meth:`zeroed_bytes` / :meth:`zeroed_bytes_family` — recycled
      byte masks, zeroed on acquire (the ring search's per-origin
      visited masks);
    * :meth:`row` — plain reusable ``list`` rows refilled from a
      cached fill template (for arrays whose cells must all be
      readable without a stamp check, e.g. distance rows);
    * :meth:`plain` / :meth:`list` / :meth:`deque` — reusable
      containers (uncleaned, cleared, cleared respectively).
    """

    __slots__ = ("_stamped", "_rows", "_row_cursor",
                 "_fill_templates", "_deques", "_lists", "_plain",
                 "_bytearrays", "_byte_families", "objects")

    def __init__(self) -> None:
        self._stamped: dict[str, StampedArrays] = {}
        self._rows: list[list[int]] = []
        self._row_cursor = 0
        self._fill_templates: dict[tuple[int, int], list[int]] = {}
        self._deques: dict[str, deque] = {}
        self._lists: dict[str, list] = {}
        self._plain: dict[str, list] = {}
        self._bytearrays: dict[str, bytearray] = {}
        self._byte_families: dict[str, list[bytearray]] = {}
        #: free-form per-call-site object cache (e.g. the binder's
        #: reusable provisional capacity pool)
        self.objects: dict[str, object] = {}

    # -- stamped arrays -----------------------------------------------------

    def stamped(self, name: str, size: int) -> tuple[list, list[int], int]:
        scratch = self._stamped.get(name)
        if scratch is None:
            scratch = self._stamped[name] = StampedArrays()
        return scratch.acquire(size)

    # -- plain reusable rows ------------------------------------------------

    def begin_rows(self) -> None:
        """Start a fresh row lease cycle (earlier leases become reusable).

        Rows are handed out cursor-wise; callers must not retain a row
        across ``begin_rows`` boundaries (copy it out instead, as
        ``SparseDistanceMatrix.merge`` does).
        """
        self._row_cursor = 0

    def row(self, size: int, fill: int = -1) -> list[int]:
        """A reusable row of ``size`` cells, every cell reset to ``fill``."""
        template = self._fill_templates.get((size, fill))
        if template is None:
            template = self._fill_templates[(size, fill)] = [fill] * size
        cursor = self._row_cursor
        if cursor < len(self._rows):
            row = self._rows[cursor]
            if len(row) != size:
                row = self._rows[cursor] = [fill] * size
            else:
                row[:] = template
        else:
            row = [fill] * size
            self._rows.append(row)
        self._row_cursor = cursor + 1
        return row

    # -- pooled zeroed byte masks -------------------------------------------

    def zeroed_bytes(self, name: str, size: int) -> bytearray:
        """A reusable bytearray of ``size``, zeroed on every acquire.

        Zeroing is one C-level slice write (a few hundred bytes for
        realistic platforms) — the reuse avoids the allocation and the
        collector churn, not the memset.
        """
        mask = self._bytearrays.get(name)
        if mask is None or len(mask) != size:
            mask = self._bytearrays[name] = bytearray(size)
        else:
            mask[:] = bytes(size) if size > _ZERO_CACHE_LIMIT else _zeros(size)
        return mask

    def zeroed_bytes_family(
        self, name: str, count: int, size: int
    ) -> list[bytearray]:
        """``count`` independent zeroed byte masks under one name."""
        family = self._byte_families.get(name)
        if family is None:
            family = self._byte_families[name] = []
        masks: list[bytearray] = []
        for index in range(count):
            if index < len(family) and len(family[index]) == size:
                mask = family[index]
                mask[:] = bytes(size) if size > _ZERO_CACHE_LIMIT else _zeros(size)
            else:
                mask = bytearray(size)
                if index < len(family):
                    family[index] = mask
                else:
                    family.append(mask)
            masks.append(mask)
        return masks

    # -- reusable containers ------------------------------------------------

    def plain(self, name: str, size: int) -> list:
        """A reusable uncleaned list of at least ``size`` cells.

        Cell contents are whatever the previous use left — only for
        call sites whose algorithm provably writes a cell before any
        read (e.g. Dijkstra parents, whose reads walk the just-found
        path).
        """
        buffer = self._plain.get(name)
        if buffer is None:
            buffer = self._plain[name] = [0] * size
        elif len(buffer) < size:
            buffer.extend([0] * (size - len(buffer)))
        return buffer

    def deque(self, name: str) -> deque:
        """A cleared, reusable deque (BFS frontier queues)."""
        queue = self._deques.get(name)
        if queue is None:
            queue = self._deques[name] = deque()
        else:
            queue.clear()
        return queue

    def list(self, name: str) -> list:
        """A cleared, reusable list (heaps, frontier buffers)."""
        buffer = self._lists.get(name)
        if buffer is None:
            buffer = self._lists[name] = []
        else:
            buffer.clear()
        return buffer
