"""Platform substrate: elements, topology, state, builders, faults.

This package models the heterogeneous MPSoC the resource manager runs
on — the paper's ``P = <E, L>`` with typed processing elements, NoC
routers, capacity-limited links, and the run-time occupancy ledger.
"""

from repro.arch.builders import (
    crisp,
    fat_tree,
    heterogeneous_mesh,
    irregular,
    line,
    mesh,
    torus,
)
from repro.arch.elements import (
    ElementType,
    ProcessingElement,
    Router,
    default_capacity,
    is_element,
)
from repro.arch.resources import (
    ZERO,
    ResourceError,
    ResourceVector,
    fraction_of,
    vector_sum,
)
from repro.arch.scratch import ScratchPool
from repro.arch.state import (
    AllocationError,
    AllocationState,
    ChannelReservation,
    Occupant,
)
from repro.arch.topology import Link, Platform, TopologyError

__all__ = [
    "AllocationError",
    "AllocationState",
    "ChannelReservation",
    "ElementType",
    "Link",
    "Occupant",
    "Platform",
    "ProcessingElement",
    "ResourceError",
    "ResourceVector",
    "Router",
    "ScratchPool",
    "TopologyError",
    "ZERO",
    "crisp",
    "default_capacity",
    "fat_tree",
    "fraction_of",
    "heterogeneous_mesh",
    "irregular",
    "is_element",
    "line",
    "mesh",
    "torus",
    "vector_sum",
]
