"""Fault injection and fault-driven remapping support.

One of the stated motivations for *run-time* resource management is
"to provide some degree of fault tolerance, due to imperfect
production processes and wear of materials" (paper abstract) and "to
circumvent hardware faults" (Section I).  This module provides the
scenario machinery: deterministic fault campaigns over a platform, and
the bookkeeping needed to find which applications a fault strands.

The actual re-allocation is performed by the manager
(:meth:`repro.manager.kairos.Kairos.recover`), which releases the
affected applications and retries their allocation on the degraded
platform.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.arch.state import AllocationState


@dataclass(frozen=True)
class Fault:
    """A single fault event."""

    kind: str  # "element" or "link"
    target: tuple[str, ...]  # (element,) or (node_a, node_b)

    def __post_init__(self) -> None:
        if self.kind not in ("element", "link"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        expected = 1 if self.kind == "element" else 2
        if len(self.target) != expected:
            raise ValueError(
                f"{self.kind} fault expects {expected} target(s), got {self.target}"
            )


@dataclass
class FaultCampaign:
    """An ordered list of faults to inject, with an audit trail."""

    faults: list[Fault] = field(default_factory=list)
    injected: list[Fault] = field(default_factory=list)

    def add_element_fault(self, element: str) -> "FaultCampaign":
        self.faults.append(Fault("element", (element,)))
        return self

    def add_link_fault(self, a: str, b: str) -> "FaultCampaign":
        self.faults.append(Fault("link", (a, b)))
        return self

    def inject_next(self, state: AllocationState) -> Fault | None:
        """Inject the next pending fault; returns it, or None when done."""
        index = len(self.injected)
        if index >= len(self.faults):
            return None
        fault = self.faults[index]
        if fault.kind == "element":
            state.fail_element(fault.target[0])
        else:
            state.fail_link(fault.target[0], fault.target[1])
        self.injected.append(fault)
        return fault

    def inject_all(self, state: AllocationState) -> list[Fault]:
        injected = []
        while (fault := self.inject_next(state)) is not None:
            injected.append(fault)
        return injected

    def schedule(
        self, times: Sequence[float]
    ) -> tuple[tuple[float, Fault], ...]:
        """Pair each pending fault with an injection time, in order.

        The ``(time, fault)`` pairs feed the discrete-event simulation
        (:func:`repro.sim.service.run_simulation`), which injects each
        fault at its sim-time instant and immediately runs
        :meth:`repro.manager.kairos.Kairos.recover`.  ``times`` must be
        non-decreasing and provide one instant per pending fault
        (already-injected faults are excluded, matching
        :meth:`inject_next`'s notion of progress).
        """
        pending = self.faults[len(self.injected):]
        if len(times) != len(pending):
            raise ValueError(
                f"need {len(pending)} times, got {len(times)}"
            )
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("fault times must be non-decreasing")
        return tuple(zip(times, pending))


def random_element_campaign(
    state: AllocationState,
    count: int,
    seed: int = 0,
    spare: Iterable[str] = (),
) -> FaultCampaign:
    """A campaign failing ``count`` random elements, excluding ``spare``.

    ``spare`` typically contains the I/O-anchored elements (the ARM and
    FPGA on CRISP) so the scenario stays mappable at all.
    Deterministic for a given seed.
    """
    rng = random.Random(seed)
    protected = set(spare)
    candidates = sorted(
        e.name for e in state.platform.elements if e.name not in protected
    )
    if count > len(candidates):
        raise ValueError(
            f"cannot fail {count} elements; only {len(candidates)} candidates"
        )
    campaign = FaultCampaign()
    for name in rng.sample(candidates, count):
        campaign.add_element_fault(name)
    return campaign


def stranded_applications(state: AllocationState, fault: Fault) -> tuple[str, ...]:
    """Application ids that lose a placement or a route to ``fault``."""
    stranded: set[str] = set()
    if fault.kind == "element":
        element = fault.target[0]
        for occupant in state.occupants(element):
            stranded.add(occupant.app_id)
        for app_id in state.applications():
            for reservation in state.reservations_of(app_id):
                if element in reservation.path:
                    stranded.add(app_id)
    else:
        a, b = fault.target
        for app_id in state.applications():
            for reservation in state.reservations_of(app_id):
                path = reservation.path
                for hop_a, hop_b in zip(path, path[1:]):
                    if {hop_a, hop_b} == {a, b}:
                        stranded.add(app_id)
                        break
    return tuple(sorted(stranded))


def degrade_sequence(
    state: AllocationState,
    campaign: FaultCampaign,
) -> Sequence[tuple[Fault, tuple[str, ...]]]:
    """Inject the full campaign, recording who is stranded at each step."""
    trail = []
    while True:
        index = len(campaign.injected)
        if index >= len(campaign.faults):
            break
        fault = campaign.faults[index]
        victims = stranded_applications(state, fault)
        campaign.inject_next(state)
        trail.append((fault, victims))
    return trail
