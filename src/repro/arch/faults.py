"""Fault injection and fault-driven remapping support.

One of the stated motivations for *run-time* resource management is
"to provide some degree of fault tolerance, due to imperfect
production processes and wear of materials" (paper abstract) and "to
circumvent hardware faults" (Section I).  This module provides the
scenario machinery: deterministic fault campaigns over a platform, and
the bookkeeping needed to find which applications a fault strands.

The actual re-allocation is performed by the manager
(:meth:`repro.manager.kairos.Kairos.recover`), which releases the
affected applications and retries their allocation on the degraded
platform.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.arch.state import AllocationState


@dataclass(frozen=True)
class Fault:
    """A single fault event.

    ``repair_after`` makes the fault *transient*: the capacity returns
    that much sim-time after injection (an MTTR draw), applied through
    the state's journaled ``heal_element`` / ``heal_link`` so
    transactions and capacity epochs stay bit-exact.  ``None`` (the
    default, and the only pre-resilience behaviour) means permanent.
    """

    kind: str  # "element" or "link"
    target: tuple[str, ...]  # (element,) or (node_a, node_b)
    repair_after: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("element", "link"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        expected = 1 if self.kind == "element" else 2
        if len(self.target) != expected:
            raise ValueError(
                f"{self.kind} fault expects {expected} target(s), got {self.target}"
            )
        if self.repair_after is not None and self.repair_after <= 0:
            raise ValueError("repair_after must be positive (or None)")


def apply_fault(state: AllocationState, fault: Fault) -> None:
    """Inject ``fault`` into the live state (journaled, epoch-bumping)."""
    if fault.kind == "element":
        state.fail_element(fault.target[0])
    else:
        state.fail_link(fault.target[0], fault.target[1])


def apply_repair(state: AllocationState, fault: Fault) -> None:
    """Undo ``fault``'s capacity loss (journaled, epoch-bumping).

    Healing is idempotent at the state level — repairing an element a
    later permanent fault re-failed is a no-op, exactly what a repair
    crew finding the tile already re-broken would do.
    """
    if fault.kind == "element":
        state.heal_element(fault.target[0])
    else:
        state.heal_link(fault.target[0], fault.target[1])


@dataclass
class FaultCampaign:
    """An ordered list of faults to inject, with an audit trail."""

    faults: list[Fault] = field(default_factory=list)
    injected: list[Fault] = field(default_factory=list)

    def add_element_fault(self, element: str) -> "FaultCampaign":
        self.faults.append(Fault("element", (element,)))
        return self

    def add_link_fault(self, a: str, b: str) -> "FaultCampaign":
        self.faults.append(Fault("link", (a, b)))
        return self

    def inject_next(self, state: AllocationState) -> Fault | None:
        """Inject the next pending fault; returns it, or None when done."""
        index = len(self.injected)
        if index >= len(self.faults):
            return None
        fault = self.faults[index]
        apply_fault(state, fault)
        self.injected.append(fault)
        return fault

    def inject_all(self, state: AllocationState) -> list[Fault]:
        injected = []
        while (fault := self.inject_next(state)) is not None:
            injected.append(fault)
        return injected

    def schedule(
        self, times: Sequence[float]
    ) -> tuple[tuple[float, Fault], ...]:
        """Pair each pending fault with an injection time, in order.

        The ``(time, fault)`` pairs feed the discrete-event simulation
        (:func:`repro.sim.service.run_simulation`), which injects each
        fault at its sim-time instant and immediately runs
        :meth:`repro.manager.kairos.Kairos.recover`.  ``times`` must be
        non-decreasing and provide one instant per pending fault
        (already-injected faults are excluded, matching
        :meth:`inject_next`'s notion of progress).
        """
        pending = self.faults[len(self.injected):]
        if len(times) != len(pending):
            raise ValueError(
                f"need {len(pending)} times, got {len(times)}"
            )
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("fault times must be non-decreasing")
        return tuple(zip(times, pending))


def random_element_campaign(
    state: AllocationState,
    count: int,
    seed: int = 0,
    spare: Iterable[str] = (),
    repair_after: float | None = None,
) -> FaultCampaign:
    """A campaign failing ``count`` random elements, excluding ``spare``.

    ``spare`` typically contains the I/O-anchored elements (the ARM and
    FPGA on CRISP) so the scenario stays mappable at all.
    Deterministic for a given seed.  ``repair_after`` makes every fault
    transient with that MTTR (see :class:`Fault`).
    """
    rng = random.Random(seed)
    protected = set(spare)
    candidates = sorted(
        e.name for e in state.platform.elements if e.name not in protected
    )
    if count > len(candidates):
        raise ValueError(
            f"cannot fail {count} elements; only {len(candidates)} candidates"
        )
    campaign = FaultCampaign()
    for name in rng.sample(candidates, count):
        campaign.faults.append(
            Fault("element", (name,), repair_after=repair_after)
        )
    return campaign


def _link_candidates(
    state: AllocationState, spare: Iterable[str]
) -> list[tuple[str, str]]:
    """Undirected link endpoint pairs, excluding links touching ``spare``.

    Sorted by endpoint names so the candidate order — and therefore the
    seeded sample — is independent of platform construction order.
    """
    protected = set(spare)
    pairs = []
    for link in state.platform.links:
        a, b = sorted((link.a.name, link.b.name))
        if a in protected or b in protected:
            continue
        pairs.append((a, b))
    pairs.sort()
    return pairs


def random_link_campaign(
    state: AllocationState,
    count: int,
    seed: int = 0,
    spare: Iterable[str] = (),
    repair_after: float | None = None,
) -> FaultCampaign:
    """A campaign failing ``count`` random links.

    The link-side twin of :func:`random_element_campaign`: seeded and
    deterministic, and ``spare`` protection extends to links — any link
    with a protected *endpoint* is excluded, so a spared I/O element
    cannot be cut off by losing its last connection.
    """
    rng = random.Random(seed)
    candidates = _link_candidates(state, spare)
    if count > len(candidates):
        raise ValueError(
            f"cannot fail {count} links; only {len(candidates)} candidates"
        )
    campaign = FaultCampaign()
    for a, b in rng.sample(candidates, count):
        campaign.faults.append(Fault("link", (a, b), repair_after=repair_after))
    return campaign


def random_campaign(
    state: AllocationState,
    count: int,
    seed: int = 0,
    spare: Iterable[str] = (),
    link_fraction: float = 0.0,
    repair_after: float | None = None,
) -> FaultCampaign:
    """A mixed element+link campaign: ``round(count * link_fraction)``
    link faults, the rest element faults, interleaved by a seeded
    shuffle so the two kinds arrive mixed rather than batched.

    ``spare`` protects both the named elements and every link touching
    them; determinism follows from the three seeded sub-draws
    (elements, links, interleaving) using fixed seed offsets.
    """
    if not 0.0 <= link_fraction <= 1.0:
        raise ValueError("link_fraction must lie in [0, 1]")
    link_count = round(count * link_fraction)
    element_count = count - link_count
    faults: list[Fault] = []
    if element_count:
        faults.extend(
            random_element_campaign(
                state, element_count, seed=seed, spare=spare,
                repair_after=repair_after,
            ).faults
        )
    if link_count:
        faults.extend(
            random_link_campaign(
                state, link_count, seed=seed + 1, spare=spare,
                repair_after=repair_after,
            ).faults
        )
    random.Random(seed + 2).shuffle(faults)
    campaign = FaultCampaign()
    campaign.faults.extend(faults)
    return campaign


def region_elements(
    state: AllocationState, center: str, radius: int
) -> tuple[str, ...]:
    """Element names within ``radius`` hops of ``center`` in the
    element-adjacency graph (radius 0 is just the center), sorted."""
    platform = state.platform
    frontier = [center]
    seen = {center}
    for _ in range(radius):
        frontier = [
            neighbor.name
            for name in frontier
            for neighbor in platform.element_neighbors(name)
            if neighbor.name not in seen
        ]
        seen.update(frontier)
    return tuple(sorted(seen))


def storm_campaign(
    state: AllocationState,
    epicenters: int,
    radius: int = 1,
    seed: int = 0,
    spare: Iterable[str] = (),
    repair_after: float | None = None,
) -> FaultCampaign:
    """A correlated fault storm: seeded epicenters, each taking down its
    whole element neighbourhood (``radius`` hops) at once.

    Models spatially correlated failure — a power-domain brown-out or a
    thermal hot-spot kills a *region*, not a uniform random sprinkle.
    ``spare`` elements are never epicenters and are filtered out of the
    blast radii; faults are ordered storm by storm, elements sorted
    within one storm, so injection order is deterministic.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    rng = random.Random(seed)
    protected = set(spare)
    candidates = sorted(
        e.name for e in state.platform.elements if e.name not in protected
    )
    if epicenters > len(candidates):
        raise ValueError(
            f"cannot place {epicenters} epicenters; only "
            f"{len(candidates)} candidates"
        )
    campaign = FaultCampaign()
    struck: set[str] = set()
    for center in rng.sample(candidates, epicenters):
        for name in region_elements(state, center, radius):
            if name in protected or name in struck:
                continue
            struck.add(name)
            campaign.faults.append(
                Fault("element", (name,), repair_after=repair_after)
            )
    return campaign


def stranded_applications(state: AllocationState, fault: Fault) -> tuple[str, ...]:
    """Application ids that lose a placement or a route to ``fault``."""
    stranded: set[str] = set()
    if fault.kind == "element":
        element = fault.target[0]
        for occupant in state.occupants(element):
            stranded.add(occupant.app_id)
        for app_id in state.applications():
            for reservation in state.reservations_of(app_id):
                if element in reservation.path:
                    stranded.add(app_id)
    else:
        a, b = fault.target
        for app_id in state.applications():
            for reservation in state.reservations_of(app_id):
                path = reservation.path
                for hop_a, hop_b in zip(path, path[1:]):
                    if {hop_a, hop_b} == {a, b}:
                        stranded.add(app_id)
                        break
    return tuple(sorted(stranded))


def degrade_sequence(
    state: AllocationState,
    campaign: FaultCampaign,
) -> Sequence[tuple[Fault, tuple[str, ...]]]:
    """Inject the full campaign, recording who is stranded at each step."""
    trail = []
    while True:
        index = len(campaign.injected)
        if index >= len(campaign.faults):
            break
        fault = campaign.faults[index]
        victims = stranded_applications(state, fault)
        campaign.inject_next(state)
        trail.append((fault, victims))
    return trail
