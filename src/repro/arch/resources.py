"""Resource vectors: the quantitative currency of the resource manager.

The paper (Section III) uses "a vector notation ... to denote the
resources provided by elements, and the resources required by
implementations" [14].  A :class:`ResourceVector` maps named resource
kinds (processor cycles, memory bytes, I/O interfaces, accelerator
slices, ...) to non-negative quantities and supports the small algebra
the allocation phases need:

* ``a + b`` / ``a - b`` — element-wise accumulation and release,
* ``a.fits_in(b)`` — can a requirement ``a`` be satisfied by a free
  capacity ``b`` (element-wise ``<=`` over the union of kinds),
* ``a.bottleneck(b)`` — the utilization of the scarcest resource, used
  by the knapsack density heuristic.

Vectors are immutable; the mutable bookkeeping lives in
:class:`repro.arch.state.AllocationState`.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Union

Number = Union[int, float]

#: Canonical resource kind names used across the library.  Anything
#: hashable works as a kind; these constants merely avoid typos.
CYCLES = "cycles"
MEMORY = "memory"
IO = "io"
FABRIC = "fabric"


class ResourceError(ValueError):
    """Raised for invalid resource arithmetic (e.g. negative release)."""


class ResourceVector(Mapping[str, Number]):
    """An immutable, non-negative vector of named resource quantities.

    Missing kinds are treated as zero, so vectors over different kind
    sets compose naturally::

        >>> need = ResourceVector(cycles=70, memory=16)
        >>> free = ResourceVector(cycles=100, memory=64, io=1)
        >>> need.fits_in(free)
        True
        >>> (free - need)["cycles"]
        30
    """

    __slots__ = ("_data",)

    def __init__(self, mapping: Mapping[str, Number] | None = None, **kinds: Number):
        data: dict[str, Number] = {}
        if mapping:
            data.update(mapping)
        data.update(kinds)
        for kind, quantity in data.items():
            if quantity < 0:
                raise ResourceError(
                    f"resource quantity for {kind!r} must be non-negative, "
                    f"got {quantity!r}"
                )
        # Drop explicit zeros so equality/iteration see a canonical form.
        object.__setattr__(
            self, "_data", {k: v for k, v in data.items() if v != 0}
        )

    # -- Mapping protocol -------------------------------------------------

    def __getitem__(self, kind: str) -> Number:
        return self._data.get(kind, 0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, kind: object) -> bool:
        return kind in self._data

    # -- Immutability ------------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ResourceVector is immutable")

    def __hash__(self) -> int:
        return hash(frozenset(self._data.items()))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResourceVector):
            return self._data == other._data
        if isinstance(other, Mapping):
            return self._data == {k: v for k, v in other.items() if v != 0}
        return NotImplemented

    # -- Algebra -----------------------------------------------------------
    #
    # These run inside every occupy/vacate/availability check, so they
    # loop over the raw component dicts instead of going through the
    # Mapping protocol, and build known-canonical results without the
    # validating constructor.

    @classmethod
    def _unsafe(cls, data: dict[str, Number]) -> "ResourceVector":
        """Wrap an already-canonical component dict (no zeros/negatives)."""
        vector = object.__new__(cls)
        object.__setattr__(vector, "_data", data)
        return vector

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        if not isinstance(other, ResourceVector):
            return NotImplemented
        # both operands are canonical (positive components), so the sum is too
        data = dict(self._data)
        for kind, quantity in other._data.items():
            base = data.get(kind)
            data[kind] = quantity if base is None else base + quantity
        return ResourceVector._unsafe(data)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Element-wise difference; raises if any component goes negative.

        Releasing more than was allocated is always a bookkeeping bug,
        so it fails loudly rather than clamping.
        """
        if not isinstance(other, ResourceVector):
            return NotImplemented
        data = dict(self._data)
        for kind, quantity in other._data.items():
            value = data.get(kind, 0) - quantity
            if value < 0:
                raise ResourceError(
                    f"subtraction drives {kind!r} negative "
                    f"({data.get(kind, 0)} - {quantity})"
                )
            if value == 0:
                data.pop(kind, None)
            else:
                data[kind] = value
        return ResourceVector._unsafe(data)

    def __mul__(self, scalar: Number) -> "ResourceVector":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        if scalar < 0:
            raise ResourceError("cannot scale a resource vector negatively")
        return ResourceVector({k: v * scalar for k, v in self._data.items()})

    __rmul__ = __mul__

    def fits_in(self, capacity: "ResourceVector") -> bool:
        """True when this requirement is satisfiable by ``capacity``."""
        available = capacity._data
        for kind, quantity in self._data.items():
            other = available.get(kind)
            if other is None or quantity > other:
                return False
        return True

    def dominates(self, other: "ResourceVector") -> bool:
        """True when every component of ``self`` is >= the one in ``other``."""
        return other.fits_in(self)

    def bottleneck(self, capacity: "ResourceVector") -> float:
        """Utilization of the scarcest resource if placed into ``capacity``.

        Returns the maximum ratio ``self[k] / capacity[k]`` over the
        kinds this vector requires.  A requirement of a kind the
        capacity lacks yields ``inf``.  The empty requirement yields 0.
        """
        data = capacity._data
        worst = 0.0
        for kind, quantity in self._data.items():
            available = data.get(kind, 0)
            if available == 0:
                return float("inf")
            ratio = quantity / available
            if ratio > worst:
                worst = ratio
        return worst

    def total(self) -> Number:
        """Sum of all components (a crude scalar size, used in reports)."""
        return sum(self._data.values())

    def kinds(self) -> frozenset[str]:
        return frozenset(self._data)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._data.items()))
        return f"ResourceVector({inner})"


#: The zero vector — the identity of ``+`` and the bottom of ``fits_in``.
ZERO = ResourceVector()


def vector_sum(vectors) -> ResourceVector:
    """Sum an iterable of resource vectors (empty sum is :data:`ZERO`)."""
    total = ZERO
    for vector in vectors:
        total = total + vector
    return total


def fraction_of(capacity: ResourceVector, fraction: float) -> ResourceVector:
    """A requirement asking for ``fraction`` of each kind in ``capacity``.

    Used by the synthetic generator: "tasks use between 70% and 100% of
    the element's resources" (paper Section IV).  Quantities are
    rounded down to integers when the capacity component is integral,
    but never below 1 so a positive fraction always requests something.
    """
    if not 0 < fraction <= 1:
        raise ResourceError(f"fraction must be in (0, 1], got {fraction}")
    result: dict[str, Number] = {}
    for kind, quantity in capacity.items():
        amount = quantity * fraction
        if isinstance(quantity, int):
            result[kind] = max(1, int(amount))
        else:
            result[kind] = amount
    return ResourceVector(result)
