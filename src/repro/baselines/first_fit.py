"""First-fit baseline mapper.

The paper's "None" configuration disables the cost function, so the
mapping "depends on the communication minimization that is inherent to
the resulting first-fit search method" (Section IV).  Running
MapApplication with zero weights reproduces that exactly; this module
additionally provides a *plain* first-fit mapper that skips the GAP
machinery altogether — tasks are taken in breadth-first task-graph
order and dropped onto the first element (in platform scan order) that
can host them.  It is the classic strawman against which the
incremental algorithm's locality awareness is measured (ablation A3).
"""

from __future__ import annotations

from collections import deque

from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application
from repro.arch.state import AllocationError, AllocationState
from repro.core.mapping import MappingError, MappingResult


def first_fit_map(
    app: Application,
    binding: dict[str, Implementation],
    state: AllocationState,
    app_id: str | None = None,
) -> MappingResult:
    """Map tasks first-fit without any locality reasoning.

    Tasks are visited in BFS order from the (alphabetically first)
    minimum-degree task; elements are scanned in platform declaration
    order.  Raises :class:`MappingError` when some task fits nowhere.
    Mutates ``state`` like :func:`repro.core.mapping.map_application`
    does — callers snapshot/restore around failures.
    """
    app_id = app_id or app.name
    order = _bfs_task_order(app)
    result = MappingResult(placement={}, anchors={})
    elements = state.platform.elements
    for task in order:
        implementation = binding[task]
        chosen = None
        for element in elements:
            if implementation.runs_on(element) and state.is_available(
                element, implementation.requirement
            ):
                chosen = element
                break
        if chosen is None:
            raise MappingError(
                f"first-fit: no element available for task {task!r}"
            )
        try:
            state.occupy(chosen, app_id, task, implementation.requirement)
        except AllocationError as exc:  # pragma: no cover - guarded above
            raise MappingError(str(exc)) from exc
        result.placement[task] = chosen.name
    return result


def _bfs_task_order(app: Application) -> list[str]:
    start = min(app.min_degree_tasks())
    seen = {start}
    order = [start]
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for neighbor in sorted(app.neighbors(current)):
            if neighbor not in seen:
                seen.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    # disconnected specifications are rejected by Application.validate,
    # but stay safe if callers skip validation:
    for task in sorted(app.tasks):
        if task not in seen:
            order.append(task)
    return order
