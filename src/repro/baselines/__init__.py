"""Baseline mappers: first-fit, random, simulated annealing, and
exact branch-and-bound."""

from repro.baselines.annealing import annealed_map
from repro.baselines.exhaustive import (
    InstanceTooLargeError,
    OptimalResult,
    communication_distance,
    optimal_map,
)
from repro.baselines.first_fit import first_fit_map
from repro.baselines.random_map import random_map

__all__ = [
    "InstanceTooLargeError",
    "annealed_map",
    "OptimalResult",
    "communication_distance",
    "first_fit_map",
    "optimal_map",
    "random_map",
]
