"""Simulated-annealing mapper: the slow-but-thorough comparator.

Design-time mapping flows (the tool-chains of the paper's Section I)
can afford search-based optimisation that run-time management cannot.
This baseline brackets the incremental heuristic from the other side
than :mod:`repro.baselines.exhaustive`: it usually beats first-fit and
random comfortably, approaches the branch-and-bound optimum on small
instances given enough iterations, and costs orders of magnitude more
time than MapApplication — which is exactly the trade-off that makes
the paper's low-complexity heuristic interesting.

Objective: total communication distance (the same placement-order-free
objective the exact solver optimises), over feasible placements only.
Moves: relocate one task to another feasible element, or swap two
tasks when both destinations stay feasible.  Cooling: geometric.
Deterministic for a given seed.
"""

from __future__ import annotations

import math
import random

from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application
from repro.arch.resources import ResourceVector
from repro.arch.state import AllocationError, AllocationState
from repro.core.mapping import MappingError, MappingResult


def _distance(state: AllocationState, cache: dict, a: str, b: str) -> float:
    if a == b:
        return 0.0
    key = (a, b) if a <= b else (b, a)
    value = cache.get(key)
    if value is None:
        hops = state.platform.hop_distance(key[0], key[1])
        value = float("inf") if hops < 0 else float(hops)
        cache[key] = value
    return value


def _total_cost(app, placement, state, cache) -> float:
    return sum(
        _distance(state, cache, placement[c.source], placement[c.target])
        for c in app.channels.values()
    )


def annealed_map(
    app: Application,
    binding: dict[str, Implementation],
    state: AllocationState,
    seed: int = 0,
    iterations: int = 2000,
    initial_temperature: float = 10.0,
    cooling: float = 0.995,
    app_id: str | None = None,
) -> MappingResult:
    """Simulated-annealing placement minimising communication distance.

    Starts from a random feasible placement, anneals, then commits the
    best placement found into ``state`` (like the other mappers).
    Raises :class:`MappingError` when no feasible start exists.
    """
    if not 0 < cooling < 1:
        raise ValueError("cooling must be in (0, 1)")
    app_id = app_id or app.name
    rng = random.Random(seed)
    cache: dict = {}

    # feasible candidate elements per task (static compatibility +
    # current free capacity; intra-solution capacity handled below)
    candidates = {}
    for task in sorted(app.tasks):
        implementation = binding[task]
        options = [
            e.name for e in state.platform.elements
            if implementation.runs_on(e)
            and state.is_available(e, implementation.requirement)
        ]
        if not options:
            raise MappingError(f"annealing: no element for task {task!r}")
        candidates[task] = options

    requirements = {t: binding[t].requirement for t in app.tasks}

    def feasible(placement: dict[str, str]) -> bool:
        load: dict[str, ResourceVector] = {}
        for task, element in placement.items():
            load[element] = load.get(element, ResourceVector()) + requirements[task]
        return all(
            load_vector.fits_in(state.free(element))
            for element, load_vector in load.items()
        )

    # random feasible start (retry a bounded number of times)
    placement: dict[str, str] | None = None
    for _attempt in range(200):
        trial = {t: rng.choice(candidates[t]) for t in candidates}
        if feasible(trial):
            placement = trial
            break
    if placement is None:
        raise MappingError("annealing: no feasible random start found")

    best = dict(placement)
    best_cost = current_cost = _total_cost(app, placement, state, cache)
    temperature = initial_temperature
    tasks = sorted(app.tasks)

    for _step in range(iterations):
        task = rng.choice(tasks)
        if len(tasks) > 1 and rng.random() < 0.3:
            # swap move
            other = rng.choice(tasks)
            if other == task:
                continue
            trial = dict(placement)
            trial[task], trial[other] = trial[other], trial[task]
        else:
            # relocate move
            trial = dict(placement)
            trial[task] = rng.choice(candidates[task])
        if not feasible(trial):
            continue
        trial_cost = _total_cost(app, trial, state, cache)
        delta = trial_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            placement = trial
            current_cost = trial_cost
            if current_cost < best_cost:
                best = dict(placement)
                best_cost = current_cost
        temperature *= cooling

    result = MappingResult(placement={}, anchors={})
    # commit atomically: a mid-commit failure leaves no partial placement
    with state.transaction():
        for task in tasks:
            element = best[task]
            try:
                state.occupy(element, app_id, task, requirements[task])
            except AllocationError as exc:  # pragma: no cover - feasible()
                raise MappingError(str(exc)) from exc   # guards this
            result.placement[task] = element
    return result
