"""Random feasible mapper: the sanity floor of the mapping comparison.

Any locality-aware heuristic must comfortably beat a mapper that
scatters tasks uniformly over the available elements; the ablation
benchmarks include this floor so regressions in the incremental
algorithm are visible as a shrinking gap.
"""

from __future__ import annotations

import random

from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application
from repro.arch.state import AllocationError, AllocationState
from repro.core.mapping import MappingError, MappingResult


def random_map(
    app: Application,
    binding: dict[str, Implementation],
    state: AllocationState,
    seed: int = 0,
    app_id: str | None = None,
) -> MappingResult:
    """Assign each task to a uniformly random available element.

    Deterministic for a given ``seed``.  Raises :class:`MappingError`
    when a task has no available element at its turn.  Mutates
    ``state``; callers snapshot/restore around failures.
    """
    app_id = app_id or app.name
    rng = random.Random(seed)
    result = MappingResult(placement={}, anchors={})
    for task in sorted(app.tasks):
        implementation = binding[task]
        candidates = [
            element
            for element in state.platform.elements
            if implementation.runs_on(element)
            and state.is_available(element, implementation.requirement)
        ]
        if not candidates:
            raise MappingError(
                f"random map: no element available for task {task!r}"
            )
        chosen = rng.choice(candidates)
        try:
            state.occupy(chosen, app_id, task, implementation.requirement)
        except AllocationError as exc:  # pragma: no cover - guarded above
            raise MappingError(str(exc)) from exc
        result.placement[task] = chosen.name
    return result
