"""Branch-and-bound optimal mapper (the paper's planned ILP comparison).

"In future research, we compare these results with an ILP formulation
to determine the quality of the resource allocations" (Section V).
This module realises that comparison for small instances: an exact
branch-and-bound over task-to-element assignments that minimises the
*total communication distance*

    J(placement) = sum over channels of hop_distance(e_src, e_dst)

subject to per-element resource capacities.  Communication distance is
the objective both the heuristic's communication term and Fig. 8
measure, and — unlike the fragmentation bonus — it is placement-order
independent, so "optimal" is well defined.

Complexity is O(|E|^|T|) in the worst case; the solver refuses
instances beyond a configurable size and is used only in tests and the
A3 ablation benchmark on small applications and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.implementations import Implementation
from repro.apps.taskgraph import Application
from repro.arch.elements import ProcessingElement
from repro.arch.state import AllocationState

#: refuse instances with more than this many task-element combinations
DEFAULT_MAX_COMBINATIONS = 5_000_000


class InstanceTooLargeError(RuntimeError):
    """The instance exceeds the exhaustive solver's budget."""


@dataclass(frozen=True)
class OptimalResult:
    placement: dict[str, str]
    cost: float
    nodes_explored: int


def communication_distance(
    app: Application,
    placement: dict[str, str],
    state: AllocationState,
) -> float:
    """Total hop distance over all channels (the exact objective)."""
    total = 0.0
    for channel in app.channels.values():
        source = placement[channel.source]
        target = placement[channel.target]
        if source == target:
            continue
        distance = state.platform.hop_distance(source, target)
        if distance < 0:
            return float("inf")
        total += distance
    return total


def optimal_map(
    app: Application,
    binding: dict[str, Implementation],
    state: AllocationState,
    max_combinations: int = DEFAULT_MAX_COMBINATIONS,
) -> OptimalResult:
    """Find the minimum-communication-distance feasible placement.

    Leaves ``state`` unchanged: the branch-and-bound tentatively
    occupies elements inside a transaction and unwinds every branch
    via savepoints.  Raises :class:`InstanceTooLargeError` when the candidate space
    exceeds ``max_combinations``, and ``ValueError`` when no feasible
    placement exists at all.
    """
    tasks = sorted(app.tasks)
    candidates: dict[str, list[ProcessingElement]] = {}
    space = 1
    for task in tasks:
        implementation = binding[task]
        options = [
            element
            for element in state.platform.elements
            if implementation.runs_on(element)
            and state.is_available(element, implementation.requirement)
        ]
        if not options:
            raise ValueError(f"task {task!r} has no feasible element")
        candidates[task] = options
        space *= len(options)
        if space > max_combinations:
            raise InstanceTooLargeError(
                f"{space} combinations exceed budget {max_combinations}"
            )

    # order tasks by most-constrained-first, then by degree (high-degree
    # tasks prune the distance bound fastest)
    tasks.sort(key=lambda t: (len(candidates[t]), -app.degree(t), t))

    # pairwise distance cache
    distance_cache: dict[tuple[str, str], float] = {}

    def distance(a: str, b: str) -> float:
        if a == b:
            return 0.0
        key = (a, b) if a <= b else (b, a)
        if key not in distance_cache:
            hops = state.platform.hop_distance(key[0], key[1])
            distance_cache[key] = float("inf") if hops < 0 else float(hops)
        return distance_cache[key]

    requirements = {t: binding[t].requirement for t in tasks}
    scratch_id = f"__optimal__{app.name}"

    best_cost = float("inf")
    best_placement: dict[str, str] | None = None
    nodes = 0

    placement: dict[str, str] = {}

    # incident channels per task against already-placed peers
    incident = {
        t: [
            (c.source if c.target == t else c.target)
            for c in app.incident_channels(t)
        ]
        for t in tasks
    }

    def added_cost(task: str, element_name: str) -> float:
        cost = 0.0
        for peer in incident[task]:
            peer_element = placement.get(peer)
            if peer_element is not None:
                cost += distance(element_name, peer_element)
        return cost

    def recurse(index: int, cost_so_far: float) -> None:
        nonlocal best_cost, best_placement, nodes
        if cost_so_far >= best_cost:
            return
        if index == len(tasks):
            best_cost = cost_so_far
            best_placement = dict(placement)
            return
        task = tasks[index]
        requirement = requirements[task]
        options = sorted(
            candidates[task],
            key=lambda e: (added_cost(task, e.name), e.name),
        )
        for element in options:
            if not state.is_available(element, requirement):
                continue
            delta = added_cost(task, element.name)
            nodes += 1
            placement[task] = element.name
            mark = state.savepoint()
            state.occupy(element, scratch_id, task, requirement)
            recurse(index + 1, cost_so_far + delta)
            state.rollback_to(mark)
            del placement[task]

    # explore over the live state inside a transaction: each branch
    # occupies tentatively and unwinds via savepoints, so av(e, t) is
    # evaluated by the same ledger logic the run-time manager uses and
    # the state is bit-identical afterwards (wear included)
    with state.transaction():
        recurse(0, 0.0)
    if best_placement is None:
        raise ValueError(f"no feasible placement for {app.name!r}")
    return OptimalResult(best_placement, best_cost, nodes)
