"""The cluster manager: shards + liveness + router + coordinator.

:class:`ClusterManager` presents the *same duck-typed surface* as a
single :class:`~repro.manager.kairos.Kairos` — ``controller`` /
``state.epoch`` / ``admitted`` / ``specifications`` / ``release`` /
``stranded_by_faults`` / ``utilization`` — which is what lets the
whole existing stack run over it unchanged: the sim's
:class:`~repro.sim.service.AdmissionService` drives it like any
manager, and the resilience :class:`~repro.resilience.RecoveryEngine`
re-admits shard-kill victims through it without knowing shards exist
(a re-admission simply routes to whatever is alive).

The composite **cluster epoch** is ``(liveness generation, per-shard
epoch tuple)``.  Two equal epochs certify that every shard's committed
state *and* the routable set are unchanged, so the admission service's
failed-probe short-circuit stays sound across the cluster: a shard
revival changes no shard-local epoch but does bump the liveness
generation, invalidating failure memos recorded when the cluster was
smaller.  Epochs are compared by equality only — tuples are fine.
"""

from __future__ import annotations

from repro.api.controller import Decision
from repro.apps.taskgraph import Application
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.registry import LivenessPolicy, LivenessRegistry
from repro.cluster.router import ShardRouter
from repro.cluster.shard import Shard
from repro.manager.layout import Phase, PhaseTimings
from repro.obs import DISABLED, Observability
from repro.overload import BreakerBoard, OverloadConfig
from repro.reasons import ReasonCode

__all__ = ["ClusterController", "ClusterManager"]


class _ClusterStateView:
    """The slice of ``Kairos.state`` the service layer actually reads."""

    def __init__(self, cluster: "ClusterManager") -> None:
        self._cluster = cluster

    @property
    def epoch(self):
        return self._cluster.epoch

    def touch(self) -> None:
        """Invalidate equality with every previously observed epoch."""
        self._cluster._touched += 1


class ClusterController:
    """The façade slice (admit/release/recovery_engine) over a cluster."""

    def __init__(self, cluster: "ClusterManager") -> None:
        self.cluster = cluster

    def admit(self, app: Application, app_id: str) -> Decision:
        return self.cluster.admit(app, app_id)

    def release(self, app_id: str) -> None:
        self.cluster.release(app_id)

    def recovery_engine(self, policy=None):
        from repro.resilience.recovery import RecoveryEngine

        return RecoveryEngine(self.cluster, policy)


class ClusterManager:
    """Sharded admission over disjoint platform regions."""

    def __init__(
        self,
        shards: list[Shard],
        liveness_policy: LivenessPolicy | None = None,
        obs: Observability | None = None,
        allow_split: bool = True,
        max_commit_retries: int = 2,
        overload: OverloadConfig | None = None,
    ) -> None:
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        self.shards = list(shards)
        self.by_id = {shard.shard_id: shard for shard in self.shards}
        if len(self.by_id) != len(self.shards):
            raise ValueError("duplicate shard ids")
        self.obs = DISABLED if obs is None else obs
        self.liveness = LivenessRegistry(liveness_policy)
        for shard in self.shards:
            self.liveness.register(shard.shard_id, now=0.0)
        self.router = ShardRouter(self.shards, self.liveness)
        self.coordinator = ClusterCoordinator(
            obs=obs, max_retries=max_commit_retries
        )
        self.allow_split = allow_split
        #: app_id -> ((shard_id, part_id), ...) — single-shard apps
        #: book one part under their own id; split apps book one part
        #: per touched shard.  This map is the *only* record that parts
        #: belong together, so a protocol that never returns partial
        #: bookkeeping cannot leak partial allocations (checked by
        #: :meth:`verify_integrity`).
        self.admitted: dict[str, tuple[tuple[str, str], ...]] = {}
        #: original specifications, the recovery engine's re-admission
        #: source (same contract as ``Kairos.specifications``)
        self.specifications: dict[str, Application] = {}
        self.state = _ClusterStateView(self)
        self.controller = ClusterController(self)
        #: duck-typing stubs for the service/engine adapters: the
        #: cluster has no element-health registry (liveness is the
        #: shard-granular analogue) and no cluster-wide distance field
        self.health = None
        self._distfield = None
        self._touched = 0
        registry = self.obs.registry
        self._c_admitted = registry.counter("cluster.admitted")
        self._c_rejected = registry.counter("cluster.rejected")
        self._c_spillovers = registry.counter("cluster.spillovers")
        self._c_splits = registry.counter("cluster.splits")
        self.overload = overload
        breaker_policy = overload.breaker if overload is not None else None
        #: per-shard circuit breakers around the router's candidates;
        #: None without an :class:`OverloadConfig` (zero overhead, no
        #: trace records — the legacy digest contract)
        self.breakers = (
            None if breaker_policy is None
            else BreakerBoard(breaker_policy, self.by_id)
        )
        #: sim-clock accessor, rebound by ``run_cluster_simulation`` to
        #: the kernel's clock; breakers and liveness faults read time
        #: through it so direct (offline) use stays well-defined
        self.now_fn = lambda: 0.0
        #: (kind, payload) events produced inside :meth:`admit` —
        #: breaker edges and fault-storm liveness transitions.  The
        #: manager cannot reach the trace, so the service drains these
        #: after each admission, keeping record order deterministic.
        self.pending_records: list[tuple[str, dict]] = []

    # -- epochs --------------------------------------------------------------

    @property
    def epoch(self):
        """Composite capacity epoch (equality-comparable only)."""
        return (
            self.liveness.generation + self._touched,
            tuple(shard.manager.state.epoch for shard in self.shards),
        )

    # -- admission -----------------------------------------------------------

    def admit(self, app: Application, app_id: str) -> Decision:
        """Route, probe with spill-over, fall back to a cross-shard split."""
        if app_id in self.admitted:
            raise ValueError(f"application id {app_id!r} already admitted")
        candidates = self.router.candidates(app_id)
        if not candidates:
            self._c_rejected.inc()
            return Decision(
                admitted=False,
                app_id=app_id,
                epoch=self.epoch,
                phase=Phase.BINDING,
                reason="no routable shard (cluster demoted)",
                code=ReasonCode.CLUSTER_UNAVAILABLE,
                timings=PhaseTimings(),
            )
        if self.breakers is not None:
            candidates = self._breaker_filter(candidates)
            if not candidates:
                self._c_rejected.inc()
                return Decision(
                    admitted=False,
                    app_id=app_id,
                    epoch=self.epoch,
                    phase=Phase.BINDING,
                    reason="every routable shard's breaker is open",
                    code=ReasonCode.BREAKER_OPEN,
                    timings=PhaseTimings(),
                )
        first_failure: Decision | None = None
        for index, shard in enumerate(candidates):
            decision = shard.admit(app, app_id)
            if self.breakers is not None:
                self._note_probe(shard, decision)
            if decision.admitted:
                if index > 0:
                    self._c_spillovers.inc()
                self._book(app_id, app, ((shard.shard_id, app_id),))
                return decision
            if first_failure is None:
                first_failure = decision
        if self.allow_split and len(candidates) >= 2 and len(app) >= 2:
            result = self.coordinator.admit_split(
                app, app_id, candidates[:2]
            )
            if result.decision.admitted:
                self._c_splits.inc()
                self._book(app_id, app, result.parts)
                return result.decision
            if result.attempts > 0:
                # the split genuinely ran and failed; its structured
                # outcome supersedes the single-shard rejection
                self._c_rejected.inc()
                return result.decision
        self._c_rejected.inc()
        return first_failure

    # -- circuit breakers ----------------------------------------------------

    def _breaker_filter(self, candidates):
        """Drop candidates whose breaker refuses probes right now."""
        now = self.now_fn()
        allowed = []
        for shard in candidates:
            ok, transition = self.breakers.allow(shard.shard_id, now)
            if transition is not None:
                self._note_breaker(transition)
            if ok:
                allowed.append(shard)
            else:
                self.obs.registry.counter(
                    f"breaker.{shard.shard_id}.blocked"
                ).inc()
        return allowed

    def _note_probe(self, shard: Shard, decision: Decision) -> None:
        """Feed one probe outcome to the shard's breaker.

        Only a ``SHARD_DOWN`` decision indicts the shard — a capacity
        rejection is a healthy shard saying no and stays neutral.
        Breaker failures also feed the liveness registry's fault
        counter, so a genuinely dying shard still reaches the
        storm-demotion path even when its breaker shields it from
        further probes.  Split-admission probes are deliberately not
        wired here: the 2PC coordinator owns its own retry discipline.
        """
        now = self.now_fn()
        if decision.admitted:
            transition = self.breakers.record(shard.shard_id, True, now)
        elif decision.code == ReasonCode.SHARD_DOWN:
            transition = self.breakers.record(shard.shard_id, False, now)
            for lt in self.liveness.note_fault(shard.shard_id, now):
                self._touched += 1
                self.pending_records.append((
                    "shard_state",
                    {
                        "shard": lt.shard_id,
                        "state": lt.state.value,
                        "was": lt.previous.value,
                        "reason": lt.reason,
                    },
                ))
        else:
            transition = None
        if transition is not None:
            self._note_breaker(transition)

    def _note_breaker(self, transition) -> None:
        """One automaton edge: invalidate epochs, count, queue a record."""
        self._touched += 1
        self.obs.registry.counter(
            f"breaker.{transition.shard_id}.transitions"
        ).inc()
        self.pending_records.append((
            "breaker",
            {
                "shard": transition.shard_id,
                "state": transition.state.value,
                "was": transition.previous.value,
                "reason": transition.reason,
            },
        ))

    def _book(
        self,
        app_id: str,
        app: Application,
        parts: tuple[tuple[str, str], ...],
    ) -> None:
        self.admitted[app_id] = parts
        self.specifications[app_id] = app
        self._c_admitted.inc()

    # -- release -------------------------------------------------------------

    def release(self, app_id: str) -> None:
        """Free every part; raises ``KeyError`` for unknown ids.

        Parts resident on a killed (wiped) shard are already gone —
        ``Shard.release`` tolerates that, so releasing a half-stranded
        split application frees the surviving half.
        """
        try:
            parts = self.admitted.pop(app_id)
        except KeyError:
            raise KeyError(f"no admitted application {app_id!r}") from None
        self.specifications.pop(app_id, None)
        for shard_id, part_id in parts:
            self.by_id[shard_id].release(part_id)

    def release_all(self) -> None:
        for app_id in sorted(self.admitted):
            self.release(app_id)

    # -- recovery surface ----------------------------------------------------

    def stranded_by_faults(self) -> tuple[str, ...]:
        """Apps with at least one part no longer resident on its shard.

        A shard kill wipes the shard's allocation state immediately,
        so "booked here but not resident" is exactly "lost to a kill".
        """
        stranded = []
        for app_id in self.admitted:
            parts = self.admitted[app_id]
            if any(
                part_id not in self.by_id[shard_id].manager.admitted
                for shard_id, part_id in parts
            ):
                stranded.append(app_id)
        return tuple(sorted(stranded))

    # -- views ---------------------------------------------------------------

    def utilization(self) -> float:
        if len(self.shards) == 1:
            # bit-exact passthrough: the 1-shard lockstep contract
            # compares float-for-float with an unsharded run, and a
            # weighted mean of one term is not the identity in floats
            return self.shards[0].manager.utilization()
        total = 0.0
        weight = 0
        for shard in self.shards:
            size = len(shard.platform.elements)
            total += shard.manager.utilization() * size
            weight += size
        return total / weight if weight else 0.0

    def external_fragmentation(self) -> float:
        if len(self.shards) == 1:
            return self.shards[0].manager.external_fragmentation()
        total = 0.0
        weight = 0
        for shard in self.shards:
            size = len(shard.platform.elements)
            total += shard.manager.external_fragmentation() * size
            weight += size
        return total / weight if weight else 0.0

    def alive_fraction(self) -> float:
        return sum(1 for s in self.shards if s.alive) / len(self.shards)

    def verify_integrity(self) -> list[str]:
        """Cross-shard invariants; non-empty means a protocol bug.

        * **orphan part** — an allocation resident on a shard that no
          cluster bookkeeping entry owns.  A leaked partial commit
          (committed on shard A, unwound nowhere, never booked)
          produces exactly this.
        * **duplicate ownership** — two bookkeeping entries claiming
          the same ``(shard, part)``.

        A *missing* part (booked but not resident) is deliberately not
        a violation: that is legitimate strandedness after a kill,
        owned by the recovery engine.
        """
        violations: list[str] = []
        owned: dict[tuple[str, str], str] = {}
        for app_id in sorted(self.admitted):
            for shard_id, part_id in self.admitted[app_id]:
                key = (shard_id, part_id)
                if key in owned:
                    violations.append(
                        f"duplicate ownership of {part_id!r} on "
                        f"{shard_id}: {owned[key]!r} and {app_id!r}"
                    )
                else:
                    owned[key] = app_id
        for shard in self.shards:
            for resident_id in sorted(shard.manager.admitted):
                if (shard.shard_id, resident_id) not in owned:
                    violations.append(
                        f"orphan allocation {resident_id!r} on shard "
                        f"{shard.shard_id} (no cluster owner)"
                    )
        return violations

    def summary(self) -> dict:
        """JSON-able cluster snapshot (CLI and trace footers)."""
        summary = {
            "shards": len(self.shards),
            "alive": sum(1 for s in self.shards if s.alive),
            "liveness": self.liveness.summary(),
            "admitted": len(self.admitted),
            "splits": int(self._c_splits.value),
            "spillovers": int(self._c_spillovers.value),
        }
        if self.breakers is not None:
            summary["breakers"] = self.breakers.summary()
        return summary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ClusterManager {len(self.shards)} shards, "
            f"{len(self.admitted)} admitted>"
        )
