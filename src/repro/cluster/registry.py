"""Shard liveness: heartbeats, live → stale → dead, probation hysteresis.

The :class:`LivenessRegistry` is the cluster-level sibling of
:class:`repro.resilience.health.HealthRegistry` — the same design
rules apply: every transition is a pure function of the event sequence
and the observation times the *caller* supplies, the registry draws no
randomness and never reads the wall clock, and iteration is sorted, so
shard-kill traces replay bit-identically (asserted by
``tests/test_cluster.py``).  Times are sim-time floats from the event
kernel; using ``time.time()`` anywhere here would make heartbeat
expiry depend on host speed and break replay.

The automaton follows the RuntimeRegistry live/stale/dead heartbeat
pattern::

    live ──silence ≥ stale_after──▶ stale ──silence ≥ dead_after──▶ dead
      ▲                               │beat                           │beat
      │                               ▼                               ▼
      └──── probation elapsed ──── probation ◀────(keeps beating)─────┘
                                      │silence (flapped)
                                      ▼
                                    dead

``stale`` keeps receiving traffic (one missed beat is usually a hiccup,
and a single beat restores ``live``); ``dead`` does not.  A dead shard
that starts beating again enters *probation* — the hysteresis window:
it must beat cleanly for ``policy.probation`` sim-time before the
router trusts it again, so a flapping shard cannot oscillate between
trusted and demoted on every beat.  Fault storms are the second
demotion trigger: :meth:`note_fault` counts faults in a sliding
window and demotes a shard whose recent fault density crosses the
policy threshold even while its heartbeats still arrive.

``generation`` increments on every transition.  The cluster folds it
into its composite capacity epoch (see
:class:`repro.cluster.service.ClusterManager`), which is what keeps
the admission service's failed-probe short-circuit sound across
demotions and revivals: a revival adds capacity without touching any
shard-local epoch, so without the generation a stale failure could be
replayed against a cluster that can now admit the request.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "LivenessPolicy",
    "LivenessRegistry",
    "LivenessTransition",
    "ShardLiveness",
]


class ShardLiveness(enum.StrEnum):
    """Liveness of one shard; values appear in trace records."""

    LIVE = "live"
    #: heartbeats missed recently — still routable, benefit of the doubt
    STALE = "stale"
    #: demoted: heartbeats silent past the deadline, or a fault storm
    DEAD = "dead"
    #: beating again after death — not yet routable (hysteresis)
    PROBATION = "probation"


#: states the router may send traffic to
ROUTABLE_STATES = frozenset((ShardLiveness.LIVE, ShardLiveness.STALE))


@dataclass(frozen=True)
class LivenessPolicy:
    """Tunables of the liveness automaton (all times are sim-time).

    ``stale_after``/``dead_after`` are heartbeat-silence deadlines;
    ``probation`` is the clean-beating window a revived shard must
    survive before it is routable again; ``storm_faults`` faults
    within ``storm_window`` sim-time demote a shard outright even
    while its heartbeats still arrive.
    """

    heartbeat_interval: float = 1.0
    stale_after: float = 2.5
    dead_after: float = 5.0
    probation: float = 3.0
    storm_faults: int = 3
    storm_window: float = 10.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if not self.heartbeat_interval <= self.stale_after < self.dead_after:
            raise ValueError(
                "need heartbeat_interval <= stale_after < dead_after"
            )
        if self.probation <= 0:
            raise ValueError("probation must be positive")
        if self.storm_faults < 1:
            raise ValueError("storm_faults must be at least 1")
        if self.storm_window <= 0:
            raise ValueError("storm_window must be positive")

    def describe(self) -> dict:
        """JSON-able parameters (recipe headers round-trip through this)."""
        return {
            "heartbeat_interval": self.heartbeat_interval,
            "stale_after": self.stale_after,
            "dead_after": self.dead_after,
            "probation": self.probation,
            "storm_faults": self.storm_faults,
            "storm_window": self.storm_window,
        }

    @classmethod
    def from_params(cls, params: dict | None) -> "LivenessPolicy":
        return cls(**(params or {}))


@dataclass(frozen=True)
class LivenessTransition:
    """One shard state change, for trace records and metrics."""

    shard_id: str
    previous: ShardLiveness
    state: ShardLiveness
    reason: str


class _ShardRecord:
    """Mutable liveness record of one shard."""

    __slots__ = ("state", "last_beat", "probation_since", "fault_times")

    def __init__(self, now: float) -> None:
        self.state = ShardLiveness.LIVE
        self.last_beat = now
        self.probation_since = 0.0
        self.fault_times: list[float] = []


class LivenessRegistry:
    """Per-shard heartbeat liveness, driven by caller-supplied sim-time."""

    def __init__(self, policy: LivenessPolicy | None = None) -> None:
        self.policy = policy or LivenessPolicy()
        self._records: dict[str, _ShardRecord] = {}
        #: bumps on every transition; folded into the cluster epoch
        self.generation = 0

    # -- registration --------------------------------------------------------

    def register(self, shard_id: str, now: float = 0.0) -> None:
        if shard_id in self._records:
            raise ValueError(f"shard {shard_id!r} is already registered")
        self._records[shard_id] = _ShardRecord(now)

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self._records))

    # -- event hooks ---------------------------------------------------------

    def heartbeat(self, shard_id: str, now: float) -> list[LivenessTransition]:
        """A beat arrived: refresh the deadline, maybe start revival."""
        record = self._record(shard_id)
        record.last_beat = now
        if record.state is ShardLiveness.DEAD:
            record.probation_since = now
            return [self._move(shard_id, record, ShardLiveness.PROBATION,
                               "revived")]
        if record.state is ShardLiveness.STALE:
            return [self._move(shard_id, record, ShardLiveness.LIVE,
                               "heartbeat_resumed")]
        return []

    def note_fault(self, shard_id: str, now: float) -> list[LivenessTransition]:
        """Count a fault against the shard; demote on a storm.

        The sliding ``storm_window`` keeps old faults from haunting a
        shard forever — only recent density demotes.
        """
        record = self._record(shard_id)
        horizon = now - self.policy.storm_window
        record.fault_times = [t for t in record.fault_times if t > horizon]
        record.fault_times.append(now)
        if (len(record.fault_times) >= self.policy.storm_faults
                and record.state is not ShardLiveness.DEAD):
            return [self._move(shard_id, record, ShardLiveness.DEAD,
                               "fault_storm")]
        return []

    def demote(self, shard_id: str, now: float,
               reason: str = "demoted") -> list[LivenessTransition]:
        """Force a shard dead (operator action, external detector)."""
        record = self._record(shard_id)
        if record.state is ShardLiveness.DEAD:
            return []
        return [self._move(shard_id, record, ShardLiveness.DEAD, reason)]

    def observe(self, now: float) -> list[LivenessTransition]:
        """Advance every silence deadline and probation that elapsed.

        Deterministic given the call times; iteration is sorted so the
        emitted transition order never depends on dict history.
        """
        policy = self.policy
        transitions: list[LivenessTransition] = []
        for shard_id in sorted(self._records):
            record = self._records[shard_id]
            silence = now - record.last_beat
            state = record.state
            if state in (ShardLiveness.LIVE, ShardLiveness.STALE):
                if silence >= policy.dead_after:
                    transitions.append(self._move(
                        shard_id, record, ShardLiveness.DEAD,
                        "missed_heartbeats",
                    ))
                elif (state is ShardLiveness.LIVE
                        and silence >= policy.stale_after):
                    transitions.append(self._move(
                        shard_id, record, ShardLiveness.STALE,
                        "missed_heartbeats",
                    ))
            elif state is ShardLiveness.PROBATION:
                if silence >= policy.stale_after:
                    # flapped: went quiet again before earning trust
                    transitions.append(self._move(
                        shard_id, record, ShardLiveness.DEAD, "flapped"
                    ))
                elif now - record.probation_since >= policy.probation:
                    transitions.append(self._move(
                        shard_id, record, ShardLiveness.LIVE,
                        "probation_elapsed",
                    ))
        return transitions

    # -- queries -------------------------------------------------------------

    def state(self, shard_id: str) -> ShardLiveness:
        return self._record(shard_id).state

    def routable(self, shard_id: str) -> bool:
        return self._record(shard_id).state in ROUTABLE_STATES

    def routable_ids(self) -> tuple[str, ...]:
        return tuple(
            shard_id for shard_id in sorted(self._records)
            if self._records[shard_id].state in ROUTABLE_STATES
        )

    def summary(self) -> dict:
        """State counts, JSON-able (metrics and the CLI render this)."""
        counts: dict[str, int] = {}
        for shard_id in sorted(self._records):
            value = self._records[shard_id].state.value
            counts[value] = counts.get(value, 0) + 1
        return {
            "tracked": len(self._records),
            "states": dict(sorted(counts.items())),
            "generation": self.generation,
        }

    # -- internals -----------------------------------------------------------

    def _record(self, shard_id: str) -> _ShardRecord:
        try:
            return self._records[shard_id]
        except KeyError:
            raise KeyError(f"unknown shard {shard_id!r}") from None

    def _move(
        self,
        shard_id: str,
        record: _ShardRecord,
        state: ShardLiveness,
        reason: str,
    ) -> LivenessTransition:
        previous = record.state
        record.state = state
        self.generation += 1
        return LivenessTransition(shard_id, previous, state, reason)
