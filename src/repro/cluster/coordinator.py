"""Cross-shard admission: split, two-phase commit, all-or-unwind.

Shards own disjoint platform regions, so an application too large (or
too unlucky) for any single shard can still be admitted by *splitting*
its task graph into connected parts and placing each part on a
different shard.  The protocol is a small two-phase commit built on
the :mod:`repro.api` plan/commit façade:

1. **Plan phase** — ``plan()`` each part on its shard.  Plans hold no
   resources, so a failure here aborts with nothing to clean up.
2. **Commit phase** — ``commit()`` the plans in shard order.  A commit
   can fail even though its plan succeeded: the shard's epoch moved
   and the transparent replan found no room, or the shard died between
   phases.
3. **Unwind** — on any commit failure, release the already-committed
   parts in reverse order.  This is the all-or-nothing guarantee: a
   mid-commit shard death never leaks a partial allocation (asserted
   by ``ClusterManager.verify_integrity`` and the kill-campaign tests).

A non-``SHARD_DOWN`` commit failure is transient contention, so the
whole protocol retries (bounded by ``max_retries``); a dead shard will
not return within one admission, so ``SHARD_DOWN`` aborts immediately.

Splitting is deliberately structural, not load-aware: the task graph
is cut along a BFS order into contiguous, *connected* chunks (the
mapper requires each part to be a connected graph).  Channels crossed
by the cut are dropped from the parts — shards share no links, so
cross-region traffic cannot be routed; the cut count is surfaced on
the result for observability.  Applications whose graph cannot be cut
into connected parts are simply not splittable (``split`` returns
``None``) and fail with ``CROSS_SHARD_INFEASIBLE``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.api.controller import Decision, Plan
from repro.apps.taskgraph import Application
from repro.cluster.shard import Shard
from repro.manager.layout import Phase, PhaseTimings
from repro.obs import DISABLED, Observability
from repro.reasons import ReasonCode

__all__ = ["ClusterCoordinator", "ClusterLayout", "split_application"]


@dataclass(frozen=True)
class ClusterLayout:
    """What a successful cross-shard admission holds, per part.

    Quacks enough like a :class:`~repro.manager.layout.Layout` for the
    sim service (which only reads ``timings``); ``parts`` is the
    ownership record the manager books — it is the *only* durable
    record that the parts belong together, which is why an unwound
    commit (no ``ClusterLayout`` ever produced) leaves orphan-free
    shards by construction.
    """

    app_id: str
    #: ``(shard_id, part_app_id)`` in commit order
    parts: tuple[tuple[str, str], ...]
    layouts: tuple = ()
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    cut_channels: int = 0


def _bfs_order(app: Application) -> list[str] | None:
    """Task names in BFS order from the smallest name; None if disconnected."""
    if not app.tasks:
        return None
    start = min(app.tasks)
    order: list[str] = []
    seen = {start}
    queue = deque([start])
    while queue:
        name = queue.popleft()
        order.append(name)
        for neighbor in sorted(app.neighbors(name)):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return order if len(order) == len(app.tasks) else None


def split_application(
    app: Application, parts: int = 2
) -> tuple[list[Application], int] | None:
    """Cut ``app`` into ``parts`` connected sub-applications.

    Returns ``(sub_apps, cut_channel_count)``, or ``None`` when the
    graph cannot be cut into ``parts`` non-empty connected pieces
    (too few tasks, disconnected input, or a BFS chunk that is not
    itself connected).  Deterministic: BFS from the lexicographically
    smallest task with sorted neighbor expansion.
    """
    if parts < 2 or len(app) < parts:
        return None
    order = _bfs_order(app)
    if order is None:
        return None
    base, extra = divmod(len(order), parts)
    chunks: list[list[str]] = []
    cursor = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(order[cursor:cursor + size])
        cursor += size
    owner = {
        name: index for index, chunk in enumerate(chunks) for name in chunk
    }
    sub_apps = []
    for index, chunk in enumerate(chunks):
        part = Application(f"{app.name}::p{index}")
        for name in chunk:
            part.add_task(app.tasks[name])
        sub_apps.append(part)
    cut = 0
    for channel in app.channels.values():
        src_part = owner[channel.source]
        dst_part = owner[channel.target]
        if src_part == dst_part:
            sub_apps[src_part].add_channel(channel)
        else:
            cut += 1
    for part in sub_apps:
        if not part.is_connected():
            return None
    return sub_apps, cut


@dataclass(frozen=True)
class ClusterAdmitResult:
    """Outcome of one cross-shard admission attempt."""

    decision: Decision
    #: ownership bookkeeping on success, None on failure
    parts: tuple[tuple[str, str], ...] | None
    cut_channels: int
    attempts: int


class ClusterCoordinator:
    """Two-phase cross-shard admission with bounded retry."""

    def __init__(
        self, obs: Observability | None = None, max_retries: int = 2
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.obs = DISABLED if obs is None else obs
        self.max_retries = max_retries
        registry = self.obs.registry
        self._c_attempts = registry.counter("cluster.coordinator.attempts")
        self._c_commits = registry.counter("cluster.coordinator.commits")
        self._c_unwinds = registry.counter("cluster.coordinator.unwinds")
        self._c_replans = registry.counter("cluster.coordinator.replans")

    def admit_split(
        self, app: Application, app_id: str, shards: list[Shard]
    ) -> ClusterAdmitResult:
        """Admit ``app`` split across ``shards``, all-or-nothing."""
        if len(shards) < 2:
            raise ValueError("cross-shard admission needs at least 2 shards")
        pieces = split_application(app, len(shards))
        if pieces is None:
            return self._failed(
                app_id, shards,
                f"{app.name} cannot be cut into "
                f"{len(shards)} connected parts",
                attempts=0,
            )
        sub_apps, cut = pieces
        part_ids = [f"{app_id}::p{index}" for index in range(len(sub_apps))]
        last_failure: Decision | None = None
        attempts = 0
        for _ in range(1 + self.max_retries):
            attempts += 1
            self._c_attempts.inc()
            outcome = self._attempt(sub_apps, part_ids, shards)
            if isinstance(outcome, list):
                return self._succeeded(app_id, shards, outcome, cut, attempts)
            last_failure = outcome
            if outcome.code is ReasonCode.SHARD_DOWN:
                # a dead shard will not revive within this admission;
                # retrying would only re-plan against the same corpse
                break
        assert last_failure is not None
        return self._failed(
            app_id, shards,
            f"cross-shard commit unwound: {last_failure.reason}",
            attempts=attempts,
            phase=last_failure.phase,
            timings=last_failure.timings,
        )

    # -- one protocol round --------------------------------------------------

    def _attempt(
        self,
        sub_apps: list[Application],
        part_ids: list[str],
        shards: list[Shard],
    ) -> list[tuple[Shard, str, Decision]] | Decision:
        """One plan-all / commit-all round.

        Returns the committed ``(shard, part_id, decision)`` list on
        success, or the failing :class:`Decision` after unwinding.
        """
        plans: list[tuple[Shard, Plan]] = []
        with self.obs.tracer.span(
            "coordinator.plan", parts=len(sub_apps)
        ):
            for part, part_id, shard in zip(sub_apps, part_ids, shards):
                plan = shard.plan(part, part_id)
                if plan is None:
                    return shard.down_decision(part_id)
                if not plan.ok:
                    # plans hold nothing — abort with nothing to unwind
                    return Decision(
                        admitted=False,
                        app_id=part_id,
                        epoch=plan.epoch,
                        phase=plan.phase,
                        reason=plan.reason,
                        code=plan.code,
                        timings=plan.timings,
                    )
                plans.append((shard, plan))
        committed: list[tuple[Shard, str, Decision]] = []
        failure: Decision | None = None
        with self.obs.tracer.span(
            "coordinator.commit", parts=len(plans)
        ):
            for shard, plan in plans:
                decision = shard.commit(plan)
                self._c_commits.inc()
                if decision.replanned:
                    self._c_replans.inc()
                if not decision.admitted:
                    failure = decision
                    break
                committed.append((shard, plan.app_id, decision))
        if failure is None:
            return committed
        with self.obs.tracer.span(
            "coordinator.unwind", committed=len(committed)
        ):
            for shard, part_id, _decision in reversed(committed):
                shard.release(part_id)
        self._c_unwinds.inc()
        return failure

    # -- outcomes ------------------------------------------------------------

    def _succeeded(
        self,
        app_id: str,
        shards: list[Shard],
        committed: list[tuple[Shard, str, Decision]],
        cut: int,
        attempts: int,
    ) -> ClusterAdmitResult:
        merged = PhaseTimings()
        for _shard, _part_id, decision in committed:
            source = decision.layout.timings if decision.layout else None
            if source is None:
                continue
            for phase_name, seconds in source.recorded_items():
                merged.record(Phase(phase_name), seconds)
        parts = tuple(
            (shard.shard_id, part_id) for shard, part_id, _ in committed
        )
        layout = ClusterLayout(
            app_id=app_id,
            parts=parts,
            layouts=tuple(d.layout for _, _, d in committed),
            timings=merged,
            cut_channels=cut,
        )
        decision = Decision(
            admitted=True,
            app_id=app_id,
            epoch=shards[0].epoch,
            layout=layout,
            timings=merged,
        )
        return ClusterAdmitResult(decision, parts, cut, attempts)

    def _failed(
        self,
        app_id: str,
        shards: list[Shard],
        reason: str,
        attempts: int,
        phase: Phase | None = None,
        timings: PhaseTimings | None = None,
    ) -> ClusterAdmitResult:
        decision = Decision(
            admitted=False,
            app_id=app_id,
            epoch=shards[0].epoch,
            phase=phase if phase is not None else Phase.BINDING,
            reason=reason,
            code=ReasonCode.CROSS_SHARD_INFEASIBLE,
            timings=timings if timings is not None else PhaseTimings(),
        )
        return ClusterAdmitResult(decision, None, 0, attempts)
