"""One admission shard: a region of the platform behind its own façade.

A :class:`Shard` owns a disjoint sub-platform and a private
:class:`~repro.manager.kairos.Kairos` + its
:class:`~repro.api.AdmissionController` — the same stack an unsharded
deployment runs, which is what makes the single-shard cluster
bit-identical to the plain service (the lockstep test in
``tests/test_cluster.py``).  ``alive`` models the region process: a
killed shard wipes its allocation state (the crash loses everything
resident) and answers every request with a structured
:data:`~repro.reasons.ReasonCode.SHARD_DOWN` decision until revived,
so the router's spill-over sees an ordinary rejection during the
kill-to-detection window instead of an exception.
"""

from __future__ import annotations

from repro.api.controller import Decision, Plan
from repro.apps.taskgraph import Application
from repro.arch.builders import mesh
from repro.arch.topology import Platform
from repro.core.cost import BOTH
from repro.manager.kairos import Kairos
from repro.manager.layout import Phase, PhaseTimings
from repro.obs import DISABLED, Observability
from repro.reasons import ReasonCode

__all__ = ["Shard", "build_shards"]


class Shard:
    """A region-owning admission controller with a liveness flag."""

    def __init__(
        self,
        shard_id: str,
        platform: Platform,
        weights=BOTH,
        fastpath: bool = True,
        incremental: bool = True,
        obs: Observability | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.platform = platform
        self.obs = DISABLED if obs is None else obs
        self.manager = Kairos(
            platform, weights=weights, validation_mode="skip",
            fastpath=fastpath, incremental=incremental, obs=obs,
        )
        self.controller = self.manager.controller
        self.alive = True
        registry = self.obs.registry
        self._c_admitted = registry.counter(f"shard.{shard_id}.admitted")
        self._c_rejected = registry.counter(f"shard.{shard_id}.rejected")
        self._c_heartbeats = registry.counter(f"shard.{shard_id}.heartbeats")
        self._c_kills = registry.counter(f"shard.{shard_id}.kills")

    # -- admission ----------------------------------------------------------

    def admit(self, app: Application, app_id: str) -> Decision:
        """One-shot admission on this shard (down shards reject)."""
        if not self.alive:
            return self.down_decision(app_id)
        decision = self.controller.admit(app, app_id)
        (self._c_admitted if decision.admitted else self._c_rejected).inc()
        return decision

    def plan(self, app: Application, app_id: str) -> Plan | None:
        """A free probe on this shard; ``None`` when the shard is down."""
        if not self.alive:
            return None
        return self.controller.plan(app, app_id)

    def commit(self, plan: Plan) -> Decision:
        """Commit a plan; a shard killed since planning rejects cleanly."""
        if not self.alive:
            return self.down_decision(plan.app_id)
        decision = self.controller.commit(plan)
        (self._c_admitted if decision.admitted else self._c_rejected).inc()
        return decision

    def release(self, app_id: str) -> bool:
        """Release if resident; a wiped shard has nothing to release."""
        if app_id not in self.manager.admitted:
            return False
        self.manager.release(app_id)
        return True

    # -- lifecycle ----------------------------------------------------------

    def kill(self) -> tuple[str, ...]:
        """Crash the region: wipe state, stop beating, reject requests.

        Returns the app_ids that were resident (and are now lost until
        recovery re-places them elsewhere).
        """
        lost = tuple(sorted(self.manager.admitted))
        self.alive = False
        self._c_kills.inc()
        self.manager.release_all()
        return lost

    def revive(self) -> None:
        """The region process is back (empty); heartbeats resume.

        Routability returns only after the liveness registry's
        probation elapses — revival restores capacity, not trust.
        """
        self.alive = True

    def beat(self) -> None:
        self._c_heartbeats.inc()

    # -- views --------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.manager.state.epoch

    def utilization(self) -> float:
        return self.manager.utilization()

    def down_decision(self, app_id: str) -> Decision:
        # Phase.BINDING: the request never entered the pipeline — it
        # died at the shard boundary, which precedes every phase
        timings = PhaseTimings()
        return Decision(
            admitted=False,
            app_id=app_id,
            epoch=self.manager.state.epoch,
            phase=Phase.BINDING,
            reason=f"shard {self.shard_id} is not accepting requests",
            code=ReasonCode.SHARD_DOWN,
            timings=timings,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "up" if self.alive else "down"
        return (
            f"<Shard {self.shard_id} [{status}]: "
            f"{len(self.manager.admitted)} resident>"
        )


def build_shards(
    rows: int,
    cols: int,
    count: int,
    weights=BOTH,
    fastpath: bool = True,
    incremental: bool = True,
    obs: Observability | None = None,
) -> list[Shard]:
    """Partition a ``rows`` x ``cols`` mesh into ``count`` column bands.

    Each band is built as its own mesh platform — shards own disjoint
    regions with no shared links, the model behind the coordinator's
    "cut channels are not routed" limitation (see ``docs/cluster.md``).
    With ``count == 1`` the platform is byte-identical to
    ``mesh(rows, cols)`` (same default name), the precondition of the
    single-shard lockstep contract.
    """
    if count < 1:
        raise ValueError("shard count must be at least 1")
    if cols % count != 0:
        raise ValueError(
            f"cannot split {cols} columns into {count} equal shards"
        )
    if count == 1:
        platforms = [mesh(rows, cols)]
    else:
        band = cols // count
        platforms = [
            mesh(rows, band, name=f"shard{index}_{rows}x{band}")
            for index in range(count)
        ]
    return [
        Shard(
            f"s{index}", platform, weights=weights,
            fastpath=fastpath, incremental=incremental, obs=obs,
        )
        for index, platform in enumerate(platforms)
    ]
