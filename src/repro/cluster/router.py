"""Shard routing: placement hints with deterministic spill-over.

The router turns an ``app_id`` into an ordered candidate list: the
*home* shard first (a stable CRC32 hash of the id — ``hash()`` is
randomized per process and would break replay), then the remaining
shards in ring order.  Candidates are filtered by the liveness
registry's *routable* predicate (live and stale shards take traffic,
dead and probation shards do not), so demotion re-routes a shard's
traffic by construction — no rerouting pass, the next request simply
never sees it.  A killed-but-not-yet-demoted shard still appears in
the list; its :data:`~repro.reasons.ReasonCode.SHARD_DOWN` rejection
is what makes spill-over cover the detection window.
"""

from __future__ import annotations

import zlib

from repro.cluster.registry import LivenessRegistry
from repro.cluster.shard import Shard

__all__ = ["ShardRouter", "placement_hint"]


def placement_hint(app_id: str) -> int:
    """A stable, replay-safe placement hash for one application id."""
    return zlib.crc32(app_id.encode("utf-8"))


class ShardRouter:
    """Hint-directed routing over the routable subset of the shards."""

    def __init__(
        self, shards: list[Shard], liveness: LivenessRegistry
    ) -> None:
        if not shards:
            raise ValueError("router needs at least one shard")
        self.shards = list(shards)
        self.liveness = liveness

    def home(self, app_id: str) -> Shard:
        """The hint-preferred shard, liveness notwithstanding."""
        return self.shards[placement_hint(app_id) % len(self.shards)]

    def candidates(self, app_id: str) -> list[Shard]:
        """Routable shards in probe order: home first, then the ring."""
        count = len(self.shards)
        start = placement_hint(app_id) % count
        ordered = (
            self.shards[(start + offset) % count] for offset in range(count)
        )
        return [
            shard for shard in ordered
            if self.liveness.routable(shard.shard_id)
        ]
