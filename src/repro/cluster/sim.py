"""Sharded admission-service simulation: heartbeats, kills, recovery.

:class:`ClusterAdmissionService` is the plain
:class:`~repro.sim.service.AdmissionService` over a
:class:`~repro.cluster.service.ClusterManager` plus three shard-level
event hooks: heartbeat pulses (the liveness registry's only clock —
every timestamp it sees is kernel sim-time, never the wall clock),
shard kills and shard revivals.  Everything else — queue policies,
the epoch short-circuit, the recovery requeue, drain — is inherited
unchanged, which is what makes the single-shard cluster bit-identical
to the unsharded service (no kills → no extra trace records, no extra
RNG draws; asserted by the lockstep test in ``tests/test_cluster.py``).

Event order at one instant follows :class:`~repro.sim.events.EventKind`:
revivals (``REPAIR``) fire before the heartbeat pulse, so a revived
shard's first post-revival beat lands in the same pulse and its
probation clock starts immediately; the pulse fires before any
same-instant kill (``FAULT``), so liveness decisions never observe a
kill that "has not happened yet".

The recovery story after a kill: the victims' bookkeeping survives in
the cluster (``stranded_by_faults`` reports them), but recovery runs
only once liveness *detects* the death — missed heartbeats crossing
``dead_after`` — modelling the real detection window.  The engine
then re-admits through the cluster controller, which routes to
whatever is alive; apps that do not fit wait in the requeue and drain
on departures or once the killed shard's probation elapses.
"""

from __future__ import annotations

import time as _time
from random import Random

from repro.cluster.registry import LivenessPolicy, ShardLiveness
from repro.cluster.service import ClusterManager
from repro.cluster.shard import build_shards
from repro.core.cost import BOTH, CostWeights
from repro.obs import Observability
from repro.overload import OverloadConfig
from repro.resilience import RecoveryPolicy, ResilienceConfig
from repro.sim.events import Event, EventKernel, EventKind
from repro.sim.metrics import ServiceMetrics
from repro.sim.service import (
    AdmissionRequest,
    AdmissionService,
    QueuePolicy,
    SimulationConfig,
    SimulationResult,
    make_policy,
)
from repro.sim.trace import diff_traces, read_trace, write_trace
from repro.sim.traffic import TrafficClass, make_traffic_classes

__all__ = [
    "ClusterAdmissionService",
    "build_cluster_recipe",
    "replay_cluster_trace",
    "run_cluster_recipe",
    "run_cluster_simulation",
    "scheduled_kills",
]


class ClusterAdmissionService(AdmissionService):
    """The admission service with shard lifecycle hooks."""

    def __init__(self, cluster: ClusterManager, *args, **kwargs) -> None:
        super().__init__(cluster, *args, **kwargs)
        self.cluster = cluster
        registry = self.obs.registry
        self._c_demotions = registry.counter("cluster.demotions")
        self._c_revivals = registry.counter("cluster.revivals")

    # -- breaker record drain -----------------------------------------------

    def _drain_cluster_records(self, now: float) -> None:
        """Move the manager's queued breaker/liveness events into the trace.

        The manager produces records inside :meth:`ClusterManager.admit`
        where it cannot reach the trace; every service entry point that
        can trigger admissions drains them immediately after, so record
        order is a pure function of the event stream.  A fault-storm
        demotion discovered here runs the same recovery stanza as a
        heartbeat demotion — and recovery re-admits through the cluster,
        which may queue more records, hence the loop (it terminates:
        DEAD shards leave the candidate set and cannot re-demote).
        """
        cluster = self.cluster
        while cluster.pending_records:
            batch, cluster.pending_records = cluster.pending_records, []
            demoted = False
            for kind, payload in batch:
                self.trace.record(now, kind, **payload)
                if kind == "breaker":
                    self.metrics.breaker_transitions += 1
                elif (kind == "shard_state"
                        and payload["state"] == ShardLiveness.DEAD.value):
                    demoted = True
                    self._c_demotions.inc()
            if demoted:
                self._run_recovery(now)

    def try_admit(self, request: AdmissionRequest, now: float) -> bool:
        admitted = super().try_admit(request, now)
        self._drain_cluster_records(now)
        return admitted

    def try_admit_batch(self, requests, now):
        outcome = super().try_admit_batch(requests, now)
        self._drain_cluster_records(now)
        return outcome

    def _departure(self, kernel, event) -> None:
        super()._departure(kernel, event)
        self._drain_cluster_records(kernel.now)

    def sample(self, now: float):
        sample = super().sample(now)
        self._drain_cluster_records(now)
        return sample

    # -- shard lifecycle events ---------------------------------------------

    def kill_shard(self, shard_id: str, now: float) -> None:
        """Crash one shard; liveness finds out via missed heartbeats."""
        shard = self.cluster.by_id[shard_id]
        if not shard.alive:
            return
        lost = shard.kill()
        self.metrics.faults_injected += 1
        self._c_faults.inc()
        self.trace.record(
            now, "shard_kill", shard=shard_id, lost=len(lost)
        )
        self.metrics.on_availability(now, self.cluster.alive_fraction())

    def revive_shard(self, shard_id: str, now: float) -> None:
        """The shard process returns (empty); trust returns later.

        A revival is also a *detection* event: the process reports an
        empty allocation state, so anything still booked to it is
        provably lost — even when the kill was never demoted (a
        downtime shorter than ``dead_after`` revives a merely-stale
        shard).  Recovery runs here for exactly that window; after a
        detected death the demotion pass already handled the victims
        and the stranded set is empty.
        """
        shard = self.cluster.by_id[shard_id]
        if shard.alive:
            return
        shard.revive()
        self.trace.record(now, "shard_revive", shard=shard_id)
        self.metrics.on_availability(now, self.cluster.alive_fraction())
        if self.cluster.stranded_by_faults():
            self._run_recovery(now)
        self._drain_cluster_records(now)

    def heartbeat_pulse(self, now: float) -> None:
        """One liveness round: beats from the living, then deadlines.

        Quiet rounds (every shard alive, nothing in transition) add no
        trace records and draw no randomness — heartbeats are invisible
        to the determinism contract.
        """
        liveness = self.cluster.liveness
        transitions = []
        for shard in self.cluster.shards:
            if shard.alive:
                shard.beat()
                transitions.extend(liveness.heartbeat(shard.shard_id, now))
        transitions.extend(liveness.observe(now))
        if not transitions:
            return
        demoted = False
        revived = False
        for transition in transitions:
            self.trace.record(
                now, "shard_state",
                shard=transition.shard_id,
                state=transition.state.value,
                was=transition.previous.value,
                reason=transition.reason,
            )
            if transition.state is ShardLiveness.DEAD:
                demoted = True
                self._c_demotions.inc()
            elif (transition.state is ShardLiveness.LIVE
                    and transition.previous is ShardLiveness.PROBATION):
                revived = True
                self._c_revivals.inc()
        if demoted:
            self._run_recovery(now)
        if revived:
            # a probation graduate is fresh capacity: first the
            # requeue (kill victims were admitted before anything
            # still queued), then the queue policy
            self._drain_requeue(now)
            self.policy.on_capacity_freed(self, now)
        self._drain_cluster_records(now)

    def _run_recovery(self, now: float) -> None:
        """Mirror of the resilient fault path's recovery stanza.

        Runs when a shard is demoted to DEAD, and on a revival that
        exposes stranded bookkeeping (a kill the deadlines never saw).
        """
        outcome = self._engine.recovery_pass(now)
        self.metrics.recovered += len(outcome.recovered)
        self.metrics.lost += len(outcome.lost)
        self.trace.record(
            now, "recovery",
            stranded=list(outcome.stranded),
            recovered=sorted(outcome.recovered),
            lost=dict(sorted(outcome.lost.items())),
            deferred=sorted(outcome.deferred),
        )
        for app_id in sorted(outcome.deferred):
            entry = self._engine.pending_entry(app_id)
            if entry is not None and entry.retry_event is None:
                self._schedule_recovery_retry(
                    entry, self._engine.policy.base_delay
                )
        if outcome.lost or outcome.recovered:
            self.policy.on_capacity_freed(self, now)


# -- kill campaigns ---------------------------------------------------------


def scheduled_kills(
    shard_count: int,
    count: int,
    duration: float,
    downtime: float,
) -> tuple[tuple[float, str, float], ...]:
    """``(kill_time, shard_id, revive_time)`` spread evenly over the run.

    Kill times follow the fault-campaign convention
    (``duration * (i+1) / (count+1)``); targets cycle through the
    shards in index order.  Raises when a revival would land beyond
    the horizon — a silently never-revived shard would weaken the
    campaign the caller specified.
    """
    if count < 1:
        return ()
    if downtime <= 0:
        raise ValueError("downtime must be positive")
    kills = []
    for index in range(count):
        when = duration * (index + 1) / (count + 1)
        revive = when + downtime
        if revive > duration:
            raise ValueError(
                f"kill at t={when:g} revives at t={revive:g}, beyond "
                f"the horizon (duration {duration:g})"
            )
        kills.append((when, f"s{index % shard_count}", revive))
    return tuple(kills)


# -- the driver -------------------------------------------------------------


def run_cluster_simulation(
    rows: int,
    cols: int,
    shard_count: int,
    classes: tuple[TrafficClass, ...],
    policy: QueuePolicy,
    config: SimulationConfig = SimulationConfig(),
    kills: tuple[tuple[float, str, float], ...] = (),
    liveness: LivenessPolicy | None = None,
    recovery: RecoveryPolicy | None = None,
    weights: CostWeights = BOTH,
    fastpath: bool = True,
    incremental: bool = True,
    allow_split: bool = True,
    obs: Observability | None = None,
    overload: OverloadConfig | None = None,
) -> SimulationResult:
    """One sharded service run; the cluster twin of ``run_simulation``.

    Wiring (kernel seed, per-class arrival RNG streams, request id
    sequence, tick scheme, drain order) mirrors
    :func:`repro.sim.service.run_simulation` exactly — that mirroring
    plus quiet heartbeats is the whole lockstep argument for
    ``shard_count == 1``.  The drain additionally asserts the cluster
    integrity invariants: no orphan parts, no duplicate ownership —
    i.e. no 2PC round ever leaked a partial allocation.
    """
    if not classes:
        raise ValueError("need at least one traffic class")
    names = [cls.name for cls in classes]
    if len(set(names)) != len(names):
        raise ValueError("traffic class names must be unique")
    if policy.depth() != 0:
        raise ValueError(
            "policy still holds requests from a previous run; "
            "construct a fresh policy per simulation"
        )
    for cls in classes:
        reset = getattr(cls.arrivals, "reset", None)
        if reset is not None:
            reset()

    kernel = EventKernel(seed=config.seed)
    shards = build_shards(
        rows, cols, shard_count, weights=weights,
        fastpath=fastpath, incremental=incremental, obs=obs,
    )
    cluster = ClusterManager(
        shards, liveness_policy=liveness, obs=obs, allow_split=allow_split,
        overload=overload,
    )
    cluster.now_fn = lambda: kernel.now
    service = ClusterAdmissionService(
        cluster, policy, kernel,
        metrics=ServiceMetrics(warmup=config.warmup),
        resilience=ResilienceConfig(
            recovery=recovery if recovery is not None else RecoveryPolicy()
        ),
        overload=overload,
    )
    cursors = {cls.name: 0 for cls in classes}
    arrival_rngs = {
        cls.name: Random(f"{config.seed}:{cls.name}") for cls in classes
    }
    request_ids = iter(range(1, 1 << 62))

    def arrival(cls: TrafficClass):
        def handle(kernel: EventKernel, event: Event) -> None:
            index = cursors[cls.name]
            cursors[cls.name] = index + 1
            app = cls.pool[index % len(cls.pool)]
            request = AdmissionRequest(
                request_id=next(request_ids),
                app=app,
                app_id=f"{cls.name}#{index}",
                class_name=cls.name,
                priority=cls.priority,
                arrival_time=kernel.now,
                cls=cls,
            )
            service.offer(request, kernel.now)
            kernel.schedule(
                cls.arrivals.next_interarrival(arrival_rngs[cls.name]),
                EventKind.ARRIVAL,
                handle,
            )
        return handle

    for cls in classes:
        kernel.schedule(
            cls.arrivals.next_interarrival(arrival_rngs[cls.name]),
            EventKind.ARRIVAL,
            arrival(cls),
        )

    for when, shard_id, revive_at in kills:
        if shard_id not in cluster.by_id:
            raise ValueError(f"kill targets unknown shard {shard_id!r}")
        if when > config.duration or revive_at > config.duration:
            raise ValueError(
                f"shard kill/revive at t={when}/{revive_at} lies beyond "
                f"the horizon (duration {config.duration})"
            )
        kernel.schedule_at(
            when, EventKind.FAULT,
            lambda kernel, event: service.kill_shard(
                event.payload["shard"], kernel.now
            ),
            shard=shard_id,
        )
        kernel.schedule_at(
            revive_at, EventKind.REPAIR,
            lambda kernel, event: service.revive_shard(
                event.payload["shard"], kernel.now
            ),
            shard=shard_id,
        )

    interval = cluster.liveness.policy.heartbeat_interval

    def pulse(kernel: EventKernel, event: Event) -> None:
        service.heartbeat_pulse(kernel.now)
        if kernel.now + interval <= config.duration:
            kernel.schedule(interval, EventKind.HEARTBEAT, pulse)

    kernel.schedule(interval, EventKind.HEARTBEAT, pulse)

    def tick(kernel: EventKernel, event: Event) -> None:
        service.sample(kernel.now)
        if kernel.now + config.sample_interval <= config.duration:
            kernel.schedule(config.sample_interval, EventKind.TICK, tick)

    kernel.schedule(config.sample_interval, EventKind.TICK, tick)

    started = _time.perf_counter()
    kernel.run(until=config.duration)
    wall = _time.perf_counter() - started

    samples = service.metrics.samples
    if not samples or samples[-1].time < config.duration:
        service.sample(kernel.now)

    service.metrics.finalize_availability(config.duration)

    result = SimulationResult(
        metrics=service.metrics,
        trace=service.trace.records,
        duration=config.duration,
        wall_seconds=wall,
        events_processed=kernel.processed,
        overload_stats=service.overload_state(),
        observability=cluster.obs,
    )
    violations = cluster.verify_integrity()
    assert not violations, f"cluster integrity violated: {violations}"
    if config.drain:
        for entry in service._engine.flush():
            service.metrics.lost += 1
            service.trace.record(
                kernel.now, "recovery_lost",
                id=entry.app_id, reason="drained",
            )
        policy.flush(service, kernel.now)
        drained = sorted(cluster.admitted)
        for app_id in drained:
            cluster.release(app_id)
        result.post_drain_utilization = cluster.utilization()
        service.trace.record(
            kernel.now, "drain",
            released=len(drained),
            utilization=result.post_drain_utilization,
        )
        assert result.post_drain_utilization == 0.0, (
            "drained cluster not empty"
        )
        assert not cluster.verify_integrity(), (
            "cluster integrity violated after drain"
        )
    return result


# -- recipes ----------------------------------------------------------------


def build_cluster_recipe(
    platform: str = "12x12",
    shards: int = 2,
    duration: float = 120.0,
    seed: int = 0,
    policy: str = "fifo",
    policy_params: dict | None = None,
    rate_scale: float = 1.0,
    pool_size: int = 8,
    sample_interval: float = 5.0,
    warmup: float = 0.0,
    kills: int = 0,
    downtime: float = 20.0,
    heartbeat: "LivenessPolicy | dict | None" = None,
    recovery: "RecoveryPolicy | dict | None" = None,
    allow_split: bool = True,
    overload: "OverloadConfig | dict | None" = None,
    traffic: str = "default",
    traffic_params: dict | None = None,
) -> dict:
    """A JSON-able cluster run description, replayed by
    :func:`run_cluster_recipe`.

    The ``"shards"`` key is what distinguishes a cluster recipe from a
    plain one — ``repro sim --replay`` dispatches on it.  ``kills``
    schedules that many evenly-spaced shard kills, each revived
    ``downtime`` later.
    """
    make_policy(policy, policy_params)  # validate early
    make_traffic_classes(  # validate shape + params early
        traffic, seed=seed, rate_scale=rate_scale, pool_size=pool_size,
        **(traffic_params or {}),
    )
    if not isinstance(heartbeat, LivenessPolicy):
        heartbeat = LivenessPolicy.from_params(heartbeat)
    if not isinstance(recovery, RecoveryPolicy):
        recovery = RecoveryPolicy.from_params(recovery)
    rows, cols = _parse_mesh(platform)
    if kills:
        # validate the campaign fits the horizon before emitting it
        scheduled_kills(shards, kills, duration, downtime)
    recipe = {
        "platform": platform,
        "shards": shards,
        "duration": duration,
        "seed": seed,
        "sample_interval": sample_interval,
        "warmup": warmup,
        "policy": make_policy(policy, policy_params).describe(),
        "classes": {
            "kind": traffic,
            "seed": seed,
            "rate_scale": rate_scale,
            "pool_size": pool_size,
        },
        "heartbeat": heartbeat.describe(),
        "recovery": recovery.describe(),
        "allow_split": allow_split,
        "kills": kills,
    }
    if traffic_params:
        recipe["classes"]["params"] = dict(traffic_params)
    if kills:
        recipe["downtime"] = downtime
    overload = OverloadConfig.from_spec(overload)
    if overload is not None:
        # key present only when overload control is on: legacy cluster
        # recipes (and their digests) are untouched by this feature
        recipe["overload"] = overload.describe()
    # early shard-count validation (same error surface as run time)
    build_shards(rows, cols, shards)
    return recipe


def _parse_mesh(spec: str) -> tuple[int, int]:
    try:
        rows, cols = (int(part) for part in spec.lower().split("x"))
    except ValueError:
        raise ValueError(
            f"cluster platform spec {spec!r} must be 'RxC' (e.g. '12x12')"
        ) from None
    return rows, cols


def run_cluster_recipe(
    recipe: dict,
    trace_path=None,
    incremental: bool = True,
    obs: Observability | None = None,
    fastpath: bool = True,
) -> SimulationResult:
    """Execute a cluster recipe; optionally record the JSONL trace."""
    rows, cols = _parse_mesh(recipe["platform"])
    shard_count = int(recipe["shards"])
    classes_spec = recipe["classes"]
    classes = make_traffic_classes(
        classes_spec.get("kind", "default"),
        seed=classes_spec["seed"],
        rate_scale=classes_spec["rate_scale"],
        pool_size=classes_spec["pool_size"],
        **(classes_spec.get("params") or {}),
    )
    policy = make_policy(
        recipe["policy"]["name"], recipe["policy"].get("params") or {}
    )
    config = SimulationConfig(
        duration=recipe["duration"],
        seed=recipe["seed"],
        sample_interval=recipe["sample_interval"],
        warmup=float(recipe.get("warmup", 0.0)),
    )
    liveness = LivenessPolicy.from_params(recipe.get("heartbeat"))
    recovery = RecoveryPolicy.from_params(recipe.get("recovery"))
    kills = scheduled_kills(
        shard_count,
        int(recipe.get("kills", 0)),
        config.duration,
        float(recipe.get("downtime", 20.0)),
    )
    result = run_cluster_simulation(
        rows, cols, shard_count, classes, policy, config,
        kills=kills, liveness=liveness, recovery=recovery,
        fastpath=fastpath, incremental=incremental,
        allow_split=bool(recipe.get("allow_split", True)),
        obs=obs,
        overload=OverloadConfig.from_spec(recipe.get("overload")),
    )
    result.recipe = recipe
    if trace_path is not None:
        write_trace(trace_path, result.trace, header=recipe)
    return result


def replay_cluster_trace(path) -> tuple[bool, list[str], SimulationResult]:
    """Re-run a recorded cluster trace's recipe and diff the streams."""
    header, records = read_trace(path)
    if header is None:
        raise ValueError(f"{path}: trace has no recipe header; cannot replay")
    if "shards" not in header:
        raise ValueError(
            f"{path}: not a cluster trace (no 'shards' in the header); "
            "use replay_trace"
        )
    try:
        result = run_cluster_recipe(header)
    except KeyError as exc:
        # a mutated/truncated header is user input, not a library bug:
        # surface a structured error, never a raw stack trace
        raise ValueError(
            f"{path}: trace header is not a valid recipe "
            f"(missing key {exc})"
        ) from exc
    except (TypeError, AttributeError) as exc:
        raise ValueError(
            f"{path}: trace header is not a valid recipe ({exc!r})"
        ) from exc
    differences = diff_traces(records, result.trace)
    return not differences, differences, result
