"""repro.cluster — sharded admission with liveness and 2PC.

Partitions a large platform into disjoint regions, each owned by an
admission :class:`Shard` (a full Kairos + façade stack of its own).
A :class:`ShardRouter` turns application ids into deterministic probe
orders; a :class:`LivenessRegistry` tracks heartbeats through
``live → stale → dead`` with probation hysteresis and demotes shards
on missed beats or fault storms; a :class:`ClusterCoordinator` admits
applications too large for one shard by splitting their task graph and
running an all-or-unwind two-phase commit over the plan/commit façade.
:class:`ClusterManager` ties it together behind the same duck-typed
surface as a single Kairos, so the sim service and the recovery engine
drive a cluster without modification.

See ``docs/cluster.md`` for the partitioning model, the liveness
automaton, the 2PC failure matrix and the determinism contract.
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterLayout,
    split_application,
)
from repro.cluster.registry import (
    LivenessPolicy,
    LivenessRegistry,
    LivenessTransition,
    ShardLiveness,
)
from repro.cluster.router import ShardRouter, placement_hint
from repro.cluster.service import ClusterController, ClusterManager
from repro.cluster.shard import Shard, build_shards
from repro.cluster.sim import (
    ClusterAdmissionService,
    build_cluster_recipe,
    replay_cluster_trace,
    run_cluster_recipe,
    run_cluster_simulation,
    scheduled_kills,
)

__all__ = [
    "ClusterAdmissionService",
    "ClusterController",
    "ClusterCoordinator",
    "ClusterLayout",
    "ClusterManager",
    "LivenessPolicy",
    "LivenessRegistry",
    "LivenessTransition",
    "Shard",
    "ShardLiveness",
    "ShardRouter",
    "build_cluster_recipe",
    "build_shards",
    "placement_hint",
    "replay_cluster_trace",
    "run_cluster_recipe",
    "run_cluster_simulation",
    "scheduled_kills",
    "split_application",
]
