"""Shared fixtures: platforms, applications, and allocation states.

Also registers the tiered Hypothesis profiles (select one with the
``HYPOTHESIS_PROFILE`` environment variable):

``dev``
    10 examples — fast local iteration,
``default``
    25 examples — the normal test-suite budget,
``determinism``
    500 examples — hammers the profile-governed lockstep /
    bit-identity property tests (binary round-trips, replay and
    drain-to-zero under churn + fault storm + repair) before trusting
    a determinism-sensitive change.

Property tests that decorate with ``@settings(deadline=None)`` (no
explicit ``max_examples``) inherit the selected profile's example
budget; tests with an explicit count are pinned deliberately.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as _hypothesis_settings

_hypothesis_settings.register_profile(
    "dev", max_examples=10, deadline=None
)
_hypothesis_settings.register_profile(
    "default", max_examples=25, deadline=None
)
_hypothesis_settings.register_profile(
    "determinism", max_examples=500, deadline=None
)
_hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "default")
)

from repro.apps import (
    Application,
    GeneratorConfig,
    Implementation,
    Task,
    beamforming_application,
    generate,
)
from repro.arch import (
    AllocationState,
    ElementType,
    ResourceVector,
    crisp,
    mesh,
)


@pytest.fixture
def mesh3x3():
    """A 3x3 homogeneous DSP mesh."""
    return mesh(3, 3)


@pytest.fixture
def mesh4x4():
    return mesh(4, 4)


@pytest.fixture
def crisp_platform():
    return crisp()


@pytest.fixture
def state3x3(mesh3x3):
    return AllocationState(mesh3x3)


@pytest.fixture
def crisp_state(crisp_platform):
    return AllocationState(crisp_platform)


def simple_dsp_task(name: str, cycles: int = 40, memory: int = 8) -> Task:
    """A task with one DSP implementation (test helper)."""
    return Task(
        name,
        (
            Implementation(
                name=f"{name}_impl",
                requirement=ResourceVector(cycles=cycles, memory=memory),
                execution_time=1.0,
                cost=1.0,
                target_kind=ElementType.DSP,
            ),
        ),
    )


def chain_app(length: int = 4, cycles: int = 40) -> Application:
    """t0 -> t1 -> ... -> t{n-1}, all DSP tasks."""
    app = Application(f"chain{length}")
    previous = None
    for index in range(length):
        task = app.add_task(simple_dsp_task(f"t{index}", cycles=cycles))
        if previous is not None:
            app.connect(previous, task, bandwidth=5.0)
        previous = task
    return app


def diamond_app(cycles: int = 40) -> Application:
    """a -> (b, c) -> d."""
    app = Application("diamond")
    for name in "abcd":
        app.add_task(simple_dsp_task(name, cycles=cycles))
    app.connect("a", "b", bandwidth=5.0)
    app.connect("a", "c", bandwidth=5.0)
    app.connect("b", "d", bandwidth=5.0)
    app.connect("c", "d", bandwidth=5.0)
    return app


@pytest.fixture
def chain4():
    return chain_app(4)


@pytest.fixture
def diamond():
    return diamond_app()


@pytest.fixture
def beamformer():
    return beamforming_application()


@pytest.fixture
def small_generated():
    """A deterministic small generated application."""
    return generate(
        GeneratorConfig(inputs=1, internals=3, outputs=1), seed=11
    )
