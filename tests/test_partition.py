"""Tests for the design-time partitioning phase."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import AllocationState, mesh
from repro.partition import (
    Ceiling,
    Operation,
    OperationGraph,
    OpGraphError,
    PartitionError,
    partition_operations,
    partition_to_application,
    random_operation_graph,
)


def pipeline_graph(stages: int = 6, cycles: int = 10) -> OperationGraph:
    graph = OperationGraph("pipe")
    for index in range(stages):
        graph.add_operation(Operation(f"op{index}", cycles=cycles, memory=2))
    for index in range(stages - 1):
        graph.add_edge(f"op{index}", f"op{index + 1}", traffic=5.0)
    return graph


class TestOperationGraph:
    def test_duplicate_operation_rejected(self):
        graph = OperationGraph("g")
        graph.add_operation(Operation("a", 1))
        with pytest.raises(OpGraphError):
            graph.add_operation(Operation("a", 2))

    def test_edge_to_unknown_rejected(self):
        graph = OperationGraph("g")
        graph.add_operation(Operation("a", 1))
        with pytest.raises(OpGraphError):
            graph.add_edge("a", "ghost")

    def test_validation(self):
        graph = OperationGraph("g")
        with pytest.raises(OpGraphError):
            graph.validate()
        graph.add_operation(Operation("a", 1))
        graph.add_operation(Operation("b", 1))
        with pytest.raises(OpGraphError):  # disconnected
            graph.validate()
        graph.add_edge("a", "b")
        graph.validate()

    def test_random_graph_connected_and_deterministic(self):
        for seed in range(5):
            graph = random_operation_graph(12, seed=seed)
            assert graph.is_connected()
            assert len(graph) == 12
        a = random_operation_graph(10, seed=3)
        b = random_operation_graph(10, seed=3)
        assert [(e.source, e.target, e.traffic) for e in a.edges] == \
               [(e.source, e.target, e.traffic) for e in b.edges]


class TestPartitioner:
    def test_pipeline_packs_under_ceiling(self):
        graph = pipeline_graph(stages=6, cycles=10)
        partition = partition_operations(graph, Ceiling(cycles=30, memory=32))
        partition.validate(Ceiling(cycles=30, memory=32))
        # 6 ops x 10 cycles, ceiling 30 -> at least 2 clusters
        assert len(partition.clusters) >= 2
        for index in range(len(partition.clusters)):
            assert partition.cluster_cycles(index) <= 30

    def test_heavy_edges_kept_internal(self):
        """The heaviest edge should end up inside a cluster, not cut."""
        graph = OperationGraph("heavy")
        for name in "abcd":
            graph.add_operation(Operation(name, cycles=10))
        graph.add_edge("a", "b", traffic=100.0)  # must stay internal
        graph.add_edge("b", "c", traffic=1.0)
        graph.add_edge("c", "d", traffic=1.0)
        partition = partition_operations(graph, Ceiling(cycles=25))
        assert partition.cluster_of("a") == partition.cluster_of("b")

    def test_oversized_operation_rejected(self):
        graph = OperationGraph("big")
        graph.add_operation(Operation("huge", cycles=1000))
        with pytest.raises(PartitionError):
            partition_operations(graph, Ceiling(cycles=100))

    def test_cut_traffic_accounting(self):
        graph = pipeline_graph(stages=4, cycles=10)
        partition = partition_operations(graph, Ceiling(cycles=20, memory=32))
        # every cluster has 2 ops -> exactly 1 or more cut edges of 5.0
        total = graph.total_traffic()
        cut = partition.cut_traffic()
        assert 0 < cut < total

    def test_singleton_ceiling_yields_singletons(self):
        graph = pipeline_graph(stages=4, cycles=10)
        partition = partition_operations(graph, Ceiling(cycles=10, memory=32))
        assert len(partition.clusters) == 4
        assert partition.cut_traffic() == pytest.approx(graph.total_traffic())

    def test_refinement_never_exceeds_ceiling(self):
        ceiling = Ceiling(cycles=40, memory=16)
        graph = random_operation_graph(20, seed=8, cycles_range=(2, 12),
                                       memory_range=(0, 4))
        partition = partition_operations(graph, ceiling)
        partition.validate(ceiling)


@settings(max_examples=30, deadline=None)
@given(
    operations=st.integers(2, 25),
    seed=st.integers(0, 500),
    ceiling_cycles=st.integers(20, 100),
)
def test_partition_property_valid_and_bounded(operations, seed, ceiling_cycles):
    """Any random operation graph partitions into a valid, complete,
    ceiling-respecting clustering whose cut never exceeds the total."""
    graph = random_operation_graph(
        operations, seed=seed, cycles_range=(2, 15), memory_range=(0, 6),
    )
    ceiling = Ceiling(cycles=ceiling_cycles, memory=64)
    partition = partition_operations(graph, ceiling)
    partition.validate(ceiling)
    assert partition.cut_traffic() <= graph.total_traffic() + 1e-9


class TestToApplication:
    def test_application_structure(self):
        graph = pipeline_graph(stages=6, cycles=10)
        partition = partition_operations(graph, Ceiling(cycles=30, memory=32))
        app = partition_to_application(partition)
        app.validate()
        assert len(app) == len(partition.clusters)
        # channel bandwidth equals the cut traffic
        assert sum(c.bandwidth for c in app.channels.values()) == \
               pytest.approx(partition.cut_traffic())

    def test_requirements_reflect_clusters(self):
        graph = pipeline_graph(stages=4, cycles=12)
        partition = partition_operations(graph, Ceiling(cycles=24, memory=32))
        app = partition_to_application(partition)
        for index, task_name in enumerate(f"task{i}" for i in
                                          range(len(partition.clusters))):
            impl = app.task(task_name).implementations[0]
            assert impl.requirement["cycles"] == partition.cluster_cycles(index)

    def test_end_to_end_partition_then_allocate(self):
        """The full Fig. 1 flow: partition at design time, allocate at
        run time."""
        from repro.manager import Kairos
        graph = random_operation_graph(18, seed=4, cycles_range=(3, 15),
                                       memory_range=(0, 4))
        partition = partition_operations(graph, Ceiling(cycles=60, memory=24))
        app = partition_to_application(partition)
        manager = Kairos(mesh(4, 4), validation_mode="report")
        layout = manager.allocate(app)
        assert set(layout.placement) == set(app.tasks)
