"""Replay determinism: recorded traces must reproduce bit-identically.

Property-style over several seeds and policies: record a run to
JSONL, replay it from its own header recipe, and require the replayed
decision stream to be bit-identical (same canonical serialisation,
record by record) — the acceptance criterion of the ``repro.sim``
subsystem.  Also covers the trace container itself: canonical
round-tripping, digesting, and divergence reporting.
"""

from __future__ import annotations

import json

import pytest

from repro.sim import (
    TraceRecorder,
    build_recipe,
    diff_traces,
    read_trace,
    replay_trace,
    run_recipe,
    trace_digest,
    write_trace,
)


class TestTraceContainer:
    def test_round_trip_preserves_floats_bit_exactly(self, tmp_path):
        recorder = TraceRecorder()
        recorder.record(0.1 + 0.2, "admit", id="a#1", wait=1 / 3)
        recorder.record(2.0, "drop", id="a#2", reason="timeout")
        path = write_trace(
            tmp_path / "t.jsonl", recorder.records, header={"seed": 1}
        )
        header, records = read_trace(path)
        assert header == {"seed": 1}
        assert records == recorder.records
        assert records[0]["t"] == 0.1 + 0.2  # repr-exact float round-trip

    def test_headerless_trace_reads_all_records(self, tmp_path):
        recorder = TraceRecorder()
        recorder.record(1.0, "arrival", id="x")
        path = write_trace(tmp_path / "t.jsonl", recorder.records)
        header, records = read_trace(path)
        assert header is None
        assert len(records) == 1

    def test_digest_is_order_and_content_sensitive(self):
        first = [{"i": 0, "t": 1.0, "kind": "arrival"}]
        second = [{"i": 0, "t": 1.0, "kind": "arrival"}]
        assert trace_digest(first) == trace_digest(second)
        second[0]["t"] = 1.0000000001
        assert trace_digest(first) != trace_digest(second)

    def test_diff_reports_first_divergence_and_length(self):
        base = [{"i": 0, "kind": "a"}, {"i": 1, "kind": "b"}]
        same = [dict(r) for r in base]
        assert diff_traces(base, same) == []
        mutated = [dict(r) for r in base]
        mutated[1]["kind"] = "c"
        differences = diff_traces(base, mutated)
        assert len(differences) == 1 and "record 1" in differences[0]
        assert "length mismatch" in diff_traces(base, base[:1])[-1]

    def test_replay_requires_a_header(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [{"i": 0, "kind": "x"}])
        with pytest.raises(ValueError):
            replay_trace(path)


class TestReplayDeterminism:
    """The tentpole acceptance criterion, property-style over seeds."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_replay_is_bit_identical_across_seeds(self, tmp_path, seed):
        recipe = build_recipe(
            platform="4x4", duration=20.0, seed=seed, policy="fifo",
            rate_scale=3.0,
        )
        path = tmp_path / f"trace_{seed}.jsonl"
        recorded = run_recipe(recipe, trace_path=path)
        identical, differences, replayed = replay_trace(path)
        assert identical, differences
        assert trace_digest(recorded.trace) == trace_digest(replayed.trace)

    @pytest.mark.parametrize("policy", ["reject", "priority", "retry"])
    def test_replay_is_bit_identical_across_policies(self, tmp_path, policy):
        recipe = build_recipe(
            platform="4x4", duration=15.0, seed=5, policy=policy,
            rate_scale=3.0,
        )
        path = tmp_path / f"trace_{policy}.jsonl"
        run_recipe(recipe, trace_path=path)
        identical, differences, _ = replay_trace(path)
        assert identical, differences

    def test_replay_with_faults_is_bit_identical(self, tmp_path):
        recipe = build_recipe(
            platform="5x5", duration=20.0, seed=9, policy="fifo",
            rate_scale=3.0, faults=2,
        )
        path = tmp_path / "trace_faults.jsonl"
        run_recipe(recipe, trace_path=path)
        identical, differences, _ = replay_trace(path)
        assert identical, differences

    def test_different_seeds_produce_different_traces(self, tmp_path):
        traces = []
        for seed in (0, 1):
            recipe = build_recipe(
                platform="4x4", duration=15.0, seed=seed, policy="fifo",
                rate_scale=3.0,
            )
            traces.append(run_recipe(recipe).trace)
        assert trace_digest(traces[0]) != trace_digest(traces[1])

    def test_recorded_file_is_valid_jsonl_with_recipe_header(self, tmp_path):
        recipe = build_recipe(
            platform="4x4", duration=10.0, seed=0, policy="reject",
            rate_scale=2.0,
        )
        path = tmp_path / "trace.jsonl"
        run_recipe(recipe, trace_path=path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["header"]["platform"] == "4x4"
        assert header["header"]["policy"]["name"] == "reject"
        kinds = {json.loads(line)["kind"] for line in lines[1:]}
        assert "arrival" in kinds and "sample" in kinds
