"""Tests for MapApplication (paper Fig. 5) and the mapping cost function."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    Application,
    GeneratorConfig,
    Task,
    generate,
    pinned_implementation,
)
from repro.arch import AllocationState, ResourceVector, crisp, mesh
from repro.binding import bind
from repro.core import (
    BOTH,
    COMMUNICATION,
    NONE,
    CostWeights,
    MappingCost,
    MappingError,
    MappingOptions,
    available_elements,
    map_application,
)
from tests.conftest import chain_app, diamond_app, simple_dsp_task


def bind_and_map(app, state, weights=BOTH, options=MappingOptions()):
    binding = bind(app, state)
    return map_application(
        app, binding.choice, state, cost=MappingCost(weights), options=options
    )


class TestBasicMapping:
    def test_all_tasks_placed(self, state3x3, chain4):
        result = bind_and_map(chain4, state3x3)
        assert set(result.placement) == set(chain4.tasks)

    def test_capacities_respected(self, state3x3, chain4):
        bind_and_map(chain4, state3x3)
        for element in state3x3.platform.elements:
            for kind, quantity in state3x3.free(element).items():
                assert quantity >= 0

    def test_occupancy_recorded_in_state(self, state3x3, diamond):
        result = bind_and_map(diamond, state3x3)
        for task, element in result.placement.items():
            assert state3x3.element_of(diamond.name, task) == element

    def test_chain_mapped_contiguously(self, state3x3):
        """With the communication objective, consecutive chain tasks
        land on nearby elements."""
        app = chain_app(4, cycles=60)
        result = bind_and_map(app, state3x3, weights=COMMUNICATION)
        platform = state3x3.platform
        for first, second in zip("0123", "123"):
            distance = platform.hop_distance(
                result.placement[f"t{first}"], result.placement[f"t{second}"]
            )
            assert distance <= 4  # neighbours in the element graph

    def test_missing_binding_rejected(self, state3x3, chain4):
        with pytest.raises(MappingError):
            map_application(chain4, {}, state3x3)

    def test_deterministic(self, chain4):
        placements = []
        for _ in range(2):
            state = AllocationState(mesh(3, 3))
            placements.append(bind_and_map(chain4, state).placement)
        assert placements[0] == placements[1]


class TestAnchors:
    def test_pinned_tasks_become_anchors(self, crisp_state):
        app = Application("anchored")
        app.add_task(Task("io", (pinned_implementation(
            "io_impl", "fpga", ResourceVector(io=1)),)))
        app.add_task(simple_dsp_task("worker"))
        app.connect("io", "worker", bandwidth=2.0)
        result = bind_and_map(app, crisp_state)
        assert result.anchors["io"] == "fpga"
        assert result.placement["io"] == "fpga"

    def test_min_degree_start_when_no_anchor(self, state3x3):
        app = chain_app(3)
        result = bind_and_map(app, state3x3)
        # chain endpoints have degree 1 = delta(T); the tie-break picks t0
        assert set(result.anchors) == {"t0"}

    def test_anchor_capacity_failure(self, crisp_state):
        app = Application("too_much_io")
        # fpga offers io=32; demand 3 x 20 > 32 on pinned element
        for index in range(3):
            app.add_task(Task(f"io{index}", (pinned_implementation(
                f"impl{index}", "fpga", ResourceVector(io=20)),)))
        app.add_task(simple_dsp_task("hub"))
        for index in range(3):
            app.connect(f"io{index}", "hub")
        # binding checks the pool; the pinned element cannot host all
        # three, so binding itself must fail (or mapping if it slips by)
        # — either way the attempt fails cleanly.
        from repro.binding import BindingError
        with pytest.raises((BindingError, MappingError)):
            binding = bind(app, crisp_state)
            map_application(app, binding.choice, crisp_state)

    def test_unmappable_start_task(self, state3x3):
        app = Application("monster")
        app.add_task(simple_dsp_task("big", cycles=1000))
        binding = {"big": app.task("big").implementations[0]}
        with pytest.raises(MappingError):
            map_application(app, binding, state3x3)


class TestLayerTraversal:
    def test_layers_recorded(self, state3x3):
        app = chain_app(4)
        result = bind_and_map(app, state3x3)
        assert len(result.layers) == 3  # t1, t2, t3 layers from t0
        assert result.layers[0].tasks == ("t1",)

    def test_origins_are_previous_layer_elements(self, state3x3):
        app = chain_app(3)
        result = bind_and_map(app, state3x3)
        first_layer = result.layers[0]
        assert first_layer.origins == (result.anchors["t0"],)

    def test_rings_and_gap_stats_populated(self, state3x3, diamond):
        result = bind_and_map(diamond, state3x3)
        for layer in result.layers:
            assert layer.rings_searched >= 1
            assert layer.gap_invocations >= 1


class TestMappingFailure:
    def test_platform_too_small(self):
        state = AllocationState(mesh(1, 2))
        app = chain_app(4, cycles=60)  # 4 tasks x 60 > 2 x 100
        binding = bind_result = None
        from repro.binding import BindingError
        with pytest.raises((BindingError, MappingError)):
            bind_and_map(app, state)

    def test_max_rings_limits_search(self, state3x3):
        app = chain_app(9, cycles=60)
        options = MappingOptions(max_rings=1)
        with pytest.raises(MappingError):
            bind_and_map(app, state3x3, options=options)

    def test_failure_leaves_partial_state_for_caller_rollback(self, state3x3):
        """map_application mutates state on failure; the manager rolls
        back via snapshot — verify the documented contract."""
        snapshot = state3x3.snapshot()
        app = chain_app(9, cycles=95)  # 9 near-full tasks on 9 elements is
        # feasible; squeeze harder: pre-occupy some elements
        state3x3.occupy("dsp_0_0", "blocker", "b0", ResourceVector(cycles=90))
        state3x3.occupy("dsp_1_1", "blocker", "b1", ResourceVector(cycles=90))
        try:
            bind_and_map(app, state3x3)
        except Exception:
            pass
        state3x3.restore(snapshot)
        assert state3x3.placements_of(app.name) == {}


class TestAvailableElements:
    def test_counts_free_capacity(self, state3x3):
        task = simple_dsp_task("t", cycles=60)
        impl = task.implementations[0]
        assert len(available_elements("t", impl, state3x3)) == 9
        state3x3.occupy("dsp_0_0", "x", "t0", ResourceVector(cycles=50))
        assert len(available_elements("t", impl, state3x3)) == 8


class TestCostFunction:
    def test_none_weights_zero_cost(self, state3x3, diamond):
        cost = MappingCost(NONE)
        from repro.core.search import SparseDistanceMatrix
        value = cost(diamond, "app", "a",
                     state3x3.platform.element("dsp_0_0"),
                     state3x3, {}, SparseDistanceMatrix())
        assert value == 0.0

    def test_communication_prefers_nearby(self, state3x3, diamond):
        from repro.core.search import SparseDistanceMatrix
        cost = MappingCost(COMMUNICATION)
        distances = SparseDistanceMatrix()
        distances.record("dsp_0_1", "dsp_0_0", 2)
        distances.record("dsp_2_2", "dsp_0_0", 8)
        placement = {"a": "dsp_0_0"}
        near = cost(diamond, "app", "b",
                    state3x3.platform.element("dsp_0_1"),
                    state3x3, placement, distances)
        far = cost(diamond, "app", "b",
                   state3x3.platform.element("dsp_2_2"),
                   state3x3, placement, distances)
        assert near < far

    def test_missing_distance_penalised(self, state3x3, diamond):
        from repro.core.cost import DEFAULT_DISTANCE_PENALTY
        from repro.core.search import SparseDistanceMatrix
        cost = MappingCost(COMMUNICATION)
        distances = SparseDistanceMatrix()  # empty: all lookups fail
        placement = {"a": "dsp_0_0"}
        value = cost.communication_term(
            diamond, "b", state3x3.platform.element("dsp_2_2"),
            placement, distances,
        )
        assert value == DEFAULT_DISTANCE_PENALTY

    def test_unmapped_peers_ignored(self, state3x3, diamond):
        from repro.core.search import SparseDistanceMatrix
        cost = MappingCost(COMMUNICATION)
        value = cost.communication_term(
            diamond, "b", state3x3.platform.element("dsp_0_0"),
            {}, SparseDistanceMatrix(),
        )
        assert value == 0.0

    def test_fragmentation_bonus_grades(self, state3x3, diamond):
        """peer neighbour > same-app neighbour > other-app neighbour."""
        cost = MappingCost(CostWeights(0, 1))
        element = state3x3.platform.element("dsp_1_0")

        def bonus(placement, occupier_app):
            state = AllocationState(state3x3.platform)
            if placement:
                state.occupy("dsp_0_0", occupier_app, "peer_task",
                             ResourceVector(cycles=10))
            mapping = {"a": "dsp_0_0"} if occupier_app == "app" and placement else {}
            return cost.fragmentation_bonus(
                diamond, "app", "b", element, state, mapping
            )

        empty = bonus(False, "app")
        other_app = bonus(True, "someone_else")
        same_app = bonus(True, "app")
        assert empty < other_app < same_app

    def test_border_elements_favoured(self, state3x3, diamond):
        cost = MappingCost(CostWeights(0, 1))
        corner = cost.fragmentation_bonus(
            diamond, "app", "a", state3x3.platform.element("dsp_0_0"),
            state3x3, {},
        )
        center = cost.fragmentation_bonus(
            diamond, "app", "a", state3x3.platform.element("dsp_1_1"),
            state3x3, {},
        )
        assert corner > center

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            CostWeights(-1, 0)


class TestMappingOnCrisp:
    def test_beamformer_uses_all_dsps(self, crisp_state, beamformer):
        result = bind_and_map(beamformer, crisp_state, weights=BOTH)
        from repro.arch import ElementType
        dsp_elements = {
            e for t, e in result.placement.items()
            if crisp_state.platform.element(e).kind == ElementType.DSP
        }
        assert len(dsp_elements) == 45  # one DSP task per DSP

    def test_generated_apps_map(self, crisp_state):
        for seed in range(5):
            app = generate(
                GeneratorConfig(inputs=1, internals=4, outputs=1,
                                pin_io_probability=1.0,
                                io_elements=("fpga", "arm")),
                seed=seed,
            )
            snapshot = crisp_state.snapshot()
            result = bind_and_map(app, crisp_state)
            assert set(result.placement) == set(app.tasks)
            crisp_state.restore(snapshot)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 500),
    internals=st.integers(1, 6),
    comm=st.floats(0, 5),
    frag=st.floats(0, 5),
)
def test_mapping_property_complete_and_feasible(seed, internals, comm, frag):
    """Whatever the weights, a successful mapping is complete and
    never over-commits any element."""
    app = generate(
        GeneratorConfig(inputs=1, internals=internals, outputs=1,
                        utilization_low=0.2, utilization_high=0.6),
        seed=seed,
    )
    state = AllocationState(mesh(4, 4))
    try:
        binding = bind(app, state)
        result = map_application(
            app, binding.choice, state,
            cost=MappingCost(CostWeights(comm, frag)),
        )
    except Exception:
        return  # infeasible instances are allowed to fail
    assert set(result.placement) == set(app.tasks)
    for element in state.platform.elements:
        free = state.free(element)
        for kind in free:
            assert free[kind] >= 0
