"""Tests for the workload driver, the ASCII visualisation and the
simulated-annealing baseline."""

from __future__ import annotations

import pytest

from repro.apps import make_dataset
from repro.apps.datasets import DatasetSpec
from repro.arch import AllocationState, crisp, mesh
from repro.baselines import annealed_map, communication_distance, random_map
from repro.binding import bind
from repro.core import MappingError
from repro.experiments.workload import (
    WorkloadConfig,
    WorkloadStats,
    run_workload,
    saturation_point,
)
from repro.manager import Kairos
from repro.viz import render_occupancy, render_placement, render_route
from tests.conftest import chain_app, diamond_app


@pytest.fixture(scope="module")
def pool():
    return make_dataset(DatasetSpec("communication", "small"),
                        count=10, seed=9)


class TestWorkloadDriver:
    def test_deterministic(self, pool):
        platform = crisp()
        first = run_workload(pool, platform, WorkloadConfig(steps=60, seed=3))
        second = run_workload(pool, platform, WorkloadConfig(steps=60, seed=3))
        assert first.admitted == second.admitted
        assert first.rejected == second.rejected
        assert first.utilization_trace == second.utilization_trace

    def test_traces_cover_every_step(self, pool):
        stats = run_workload(pool, crisp(), WorkloadConfig(steps=40, seed=1))
        assert len(stats.utilization_trace) == 40
        assert len(stats.fragmentation_trace) == 40
        assert all(0.0 <= u <= 1.0 for u in stats.utilization_trace)

    def test_counters_consistent(self, pool):
        stats = run_workload(pool, crisp(), WorkloadConfig(steps=80, seed=2))
        assert stats.admitted >= stats.departed
        assert stats.departed == len(stats.residencies)
        assert sum(stats.rejections_by_phase.values()) == stats.rejected
        assert 0.0 <= stats.admission_ratio <= 1.0

    def test_departures_sustain_admissions(self, pool):
        """With departures, strictly more admissions happen than the
        platform's simultaneous capacity."""
        platform = crisp()
        capacity = saturation_point(pool, platform)
        stats = run_workload(
            pool, platform,
            WorkloadConfig(steps=120, departure_probability=0.4, seed=5),
        )
        assert stats.admitted > capacity

    def test_no_departures_matches_sequence_behaviour(self, pool):
        stats = run_workload(
            pool, crisp(),
            WorkloadConfig(steps=40, departure_probability=0.0, seed=1),
        )
        assert stats.departed == 0
        # utilization only grows without departures
        assert stats.utilization_trace == sorted(stats.utilization_trace)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            run_workload([], crisp())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(steps=0)
        with pytest.raises(ValueError):
            WorkloadConfig(departure_probability=1.0)

    def test_stats_empty_defaults(self):
        stats = WorkloadStats()
        assert stats.admission_ratio == 0.0
        assert stats.mean_residency == 0.0
        assert stats.mean_utilization() == 0.0


class TestViz:
    def test_occupancy_grid_shape(self):
        platform = mesh(2, 3)
        state = AllocationState(platform)
        text = render_occupancy(state)
        assert "D." in text
        assert "legend" in text

    def test_occupancy_counts_and_faults(self):
        platform = mesh(2, 2)
        state = AllocationState(platform)
        from repro.arch import ResourceVector
        state.occupy("dsp_0_0", "a", "t0", ResourceVector(cycles=10))
        state.occupy("dsp_0_0", "a", "t1", ResourceVector(cycles=10))
        state.fail_element("dsp_1_1")
        text = render_occupancy(state)
        assert "D2" in text
        assert "XX" in text

    def test_crisp_renders_all_kinds(self):
        state = AllocationState(crisp())
        text = render_occupancy(state)
        for glyph in ("D.", "A.", "F.", "M.", "T."):
            assert glyph in text

    def test_placement_rendering(self):
        platform = mesh(2, 2)
        text = render_placement(platform, {"x": "dsp_0_0", "y": "dsp_1_1"})
        assert "x" in text and "y" in text

    def test_placement_multi_task_marker(self):
        platform = mesh(1, 2)
        text = render_placement(
            platform, {"aa": "dsp_0_0", "bb": "dsp_0_0"}, width=4
        )
        assert "aa+" in text

    def test_route_rendering(self):
        platform = mesh(1, 2)
        text = render_route(platform, ("dsp_0_0", "r_0_0", "r_0_1", "dsp_0_1"))
        assert "(3 hops)" in text


class TestAnnealing:
    def test_places_all_tasks_feasibly(self):
        app = diamond_app()
        state = AllocationState(mesh(3, 3))
        binding = bind(app, state)
        result = annealed_map(app, binding.choice, state, seed=1,
                              iterations=300)
        assert set(result.placement) == set(app.tasks)
        for element in state.platform.elements:
            for kind, quantity in state.free(element).items():
                assert quantity >= 0

    def test_deterministic_per_seed(self):
        app = chain_app(4)
        placements = []
        for _ in range(2):
            state = AllocationState(mesh(3, 3))
            binding = bind(app, state)
            placements.append(
                annealed_map(app, binding.choice, state, seed=5,
                             iterations=200).placement
            )
        assert placements[0] == placements[1]

    def test_beats_random_on_average(self):
        app = chain_app(5, cycles=60)
        annealed_costs = []
        random_costs = []
        for seed in range(4):
            state_a = AllocationState(mesh(4, 4))
            binding = bind(app, state_a)
            result = annealed_map(app, binding.choice, state_a, seed=seed,
                                  iterations=1500)
            annealed_costs.append(
                communication_distance(app, result.placement, state_a)
            )
            state_r = AllocationState(mesh(4, 4))
            rnd = random_map(app, binding.choice, state_r, seed=seed)
            random_costs.append(
                communication_distance(app, rnd.placement, state_r)
            )
        assert sum(annealed_costs) < sum(random_costs)

    def test_impossible_instance_raises(self):
        app = chain_app(2, cycles=1000)
        state = AllocationState(mesh(2, 2))
        binding = {t: app.task(t).implementations[0] for t in app.tasks}
        with pytest.raises(MappingError):
            annealed_map(app, binding, state)

    def test_invalid_cooling_rejected(self):
        app = chain_app(2)
        state = AllocationState(mesh(2, 2))
        binding = bind(app, state)
        with pytest.raises(ValueError):
            annealed_map(app, binding.choice, state, cooling=1.5)
