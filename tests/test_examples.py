"""Smoke tests: the example scripts must run cleanly end to end.

The heavyweight scenarios (the Fig. 10 grid sweep inside
``beamforming_case_study.py``) are exercised by the benchmark suite
instead; these tests cover the examples a new user runs first.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "worked_example.py",
    "binary_deployment.py",
    "design_flow.py",
    "service_simulation.py",
    "plan_commit.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=180,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-1500:]}\n{result.stderr[-1500:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_output_contract():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=180,
    )
    assert "execution layout" in result.stdout
    assert "bootstrap plan" in result.stdout
    assert "utilization 0.0%" in result.stdout  # released cleanly


def test_plan_commit_output_contract():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "plan_commit.py")],
        capture_output=True, text=True, timeout=180,
    )
    assert "resources held: none" in result.stdout
    assert "replanned=True" in result.stdout      # the epoch-conflict demo
    assert "0 replans" in result.stdout           # ordered batch commits
    assert "utilization 0.0%" in result.stdout    # released cleanly


def test_worked_example_shows_iterations():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "worked_example.py")],
        capture_output=True, text=True, timeout=180,
    )
    assert "i = 0 (anchor):" in result.stdout
    assert "i = 1:" in result.stdout
    assert "final placement:" in result.stdout
