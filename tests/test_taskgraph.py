"""Unit tests for the task graph model and its graph operations."""

from __future__ import annotations

import pytest

from repro.apps import (
    Application,
    Channel,
    Implementation,
    Task,
    TaskGraphError,
)
from repro.arch import ElementType, ResourceVector
from tests.conftest import chain_app, diamond_app, simple_dsp_task


class TestConstruction:
    def test_duplicate_task_rejected(self):
        app = Application("a")
        app.add_task(simple_dsp_task("t"))
        with pytest.raises(TaskGraphError):
            app.add_task(simple_dsp_task("t"))

    def test_channel_to_unknown_task_rejected(self):
        app = Application("a")
        app.add_task(simple_dsp_task("t"))
        with pytest.raises(TaskGraphError):
            app.add_channel(Channel("c", "t", "ghost"))

    def test_self_loop_rejected(self):
        with pytest.raises(TaskGraphError):
            Channel("c", "t", "t")

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(TaskGraphError):
            Channel("c", "a", "b", bandwidth=0)

    def test_duplicate_implementation_name_rejected(self):
        impl = Implementation(
            name="x",
            requirement=ResourceVector(cycles=1),
            target_kind=ElementType.DSP,
        )
        with pytest.raises(TaskGraphError):
            Task("t", (impl, impl))

    def test_connect_generates_names(self):
        app = chain_app(3)
        assert "t0->t1" in app.channels

    def test_duplicate_channel_name_rejected(self):
        app = chain_app(2)
        with pytest.raises(TaskGraphError):
            app.connect("t0", "t1")  # same generated name


class TestGraphOps:
    def test_successors_predecessors(self):
        app = diamond_app()
        assert set(app.successors("a")) == {"b", "c"}
        assert set(app.predecessors("d")) == {"b", "c"}
        assert app.predecessors("a") == ()

    def test_neighbors_undirected_and_deduplicated(self):
        app = Application("multi")
        app.add_task(simple_dsp_task("x"))
        app.add_task(simple_dsp_task("y"))
        app.connect("x", "y", name="c1")
        app.connect("x", "y", name="c2")  # parallel channel
        assert app.neighbors("x") == ("y",)
        assert app.degree("x") == 2  # but degree counts channels

    def test_min_degree(self):
        app = diamond_app()
        assert app.min_degree() == 2
        assert set(app.min_degree_tasks()) == {"a", "b", "c", "d"}

    def test_chain_min_degree_is_endpoints(self):
        app = chain_app(4)
        assert set(app.min_degree_tasks()) == {"t0", "t3"}

    def test_channels_between(self):
        app = diamond_app()
        assert len(app.channels_between("a", "b")) == 1
        assert len(app.channels_between("a", "d")) == 0

    def test_incident_channels(self):
        app = diamond_app()
        assert len(app.incident_channels("a")) == 2
        assert len(app.incident_channels("d")) == 2


class TestDistanceLayers:
    def test_chain_layers(self):
        app = chain_app(4)
        layers = app.distance_layers(["t0"])
        assert layers == [{"t0"}, {"t1"}, {"t2"}, {"t3"}]

    def test_diamond_layers(self):
        app = diamond_app()
        layers = app.distance_layers(["a"])
        assert layers == [{"a"}, {"b", "c"}, {"d"}]

    def test_multiple_origins(self):
        app = chain_app(5)
        layers = app.distance_layers(["t0", "t4"])
        assert layers[0] == {"t0", "t4"}
        assert layers[1] == {"t1", "t3"}
        assert layers[2] == {"t2"}

    def test_empty_origins_rejected(self):
        with pytest.raises(TaskGraphError):
            chain_app(2).distance_layers([])


class TestValidate:
    def test_valid_app_passes(self):
        chain_app(3).validate()

    def test_empty_app_rejected(self):
        with pytest.raises(TaskGraphError):
            Application("empty").validate()

    def test_task_without_implementations_rejected(self):
        app = Application("a")
        app.add_task(Task("bare"))
        with pytest.raises(TaskGraphError):
            app.validate()

    def test_disconnected_app_rejected(self):
        app = Application("two_islands")
        app.add_task(simple_dsp_task("x"))
        app.add_task(simple_dsp_task("y"))
        with pytest.raises(TaskGraphError):
            app.validate()

    def test_is_connected_on_empty_app(self):
        assert Application("e").is_connected()

    def test_roles(self):
        app = Application("r")
        app.add_task(Task("i", (simple_dsp_task("x").implementations[0],), role="input"))
        assert len(app.roles("input")) == 1
        assert len(app.roles("output")) == 0
