"""Unit and property tests for the platform topology."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch import (
    ElementType,
    ProcessingElement,
    ResourceVector,
    Router,
    TopologyError,
    crisp,
    fat_tree,
    heterogeneous_mesh,
    irregular,
    line,
    mesh,
    torus,
)
from repro.arch.builders import CRISP_DSP_COUNT
from repro.arch.topology import Platform


def element(name: str) -> ProcessingElement:
    return ProcessingElement(name, ElementType.DSP, ResourceVector(cycles=10))


class TestConstruction:
    def test_duplicate_node_name_rejected(self):
        platform = Platform()
        platform.add_element(element("a"))
        with pytest.raises(TopologyError):
            platform.add_router(Router("a"))

    def test_self_link_rejected(self):
        platform = Platform()
        a = platform.add_element(element("a"))
        with pytest.raises(TopologyError):
            platform.add_link(a, a)

    def test_duplicate_link_rejected(self):
        platform = Platform()
        a = platform.add_element(element("a"))
        b = platform.add_element(element("b"))
        platform.add_link(a, b)
        with pytest.raises(TopologyError):
            platform.add_link(b, a)

    def test_link_to_unknown_node_rejected(self):
        platform = Platform()
        platform.add_element(element("a"))
        with pytest.raises(TopologyError):
            platform.add_link("a", "ghost")

    def test_frozen_platform_rejects_modification(self):
        platform = Platform()
        platform.add_element(element("a"))
        platform.freeze()
        with pytest.raises(TopologyError):
            platform.add_element(element("b"))

    def test_element_lookup_type_checked(self, mesh3x3):
        with pytest.raises(TopologyError):
            mesh3x3.element("r_0_0")  # a router, not an element

    def test_link_capacity_validation(self):
        platform = Platform()
        a = platform.add_element(element("a"))
        b = platform.add_element(element("b"))
        with pytest.raises(TopologyError):
            platform.add_link(a, b, virtual_channels=0)
        with pytest.raises(TopologyError):
            platform.add_link(a, b, bandwidth=0)


class TestDistances:
    def test_mesh_is_connected(self, mesh4x4):
        assert mesh4x4.is_connected()

    def test_hop_distance_same_node_is_zero(self, mesh3x3):
        assert mesh3x3.hop_distance("dsp_0_0", "dsp_0_0") == 0

    def test_hop_distance_matches_networkx(self, mesh4x4):
        graph = nx.Graph()
        for link in mesh4x4.links:
            graph.add_edge(link.a.name, link.b.name)
        for source in ("dsp_0_0", "r_1_2", "dsp_3_3"):
            lengths = nx.single_source_shortest_path_length(graph, source)
            for node in mesh4x4.nodes:
                assert mesh4x4.hop_distance(source, node.name) == lengths[node.name]

    def test_disconnected_distance_is_minus_one(self):
        platform = Platform()
        platform.add_element(element("a"))
        platform.add_element(element("b"))
        platform.freeze()
        assert platform.hop_distance("a", "b") == -1
        assert not platform.is_connected()

    def test_neighborhood_rings(self, mesh3x3):
        center = mesh3x3.node("r_1_1")
        ring0 = mesh3x3.neighborhood([center], 0)
        assert ring0 == {center}
        ring1 = mesh3x3.neighborhood([center], 1)
        names = {n.name for n in ring1}
        assert names == {"dsp_1_1", "r_0_1", "r_2_1", "r_1_0", "r_1_2"}

    def test_bfs_distances_with_limit(self, mesh4x4):
        distances = mesh4x4.bfs_distances([mesh4x4.node("r_0_0")], limit=2)
        assert max(distances.values()) == 2


class TestElementAdjacency:
    def test_mesh_element_neighbors(self, mesh3x3):
        # corner element: adjacent to the two elements one router away
        neighbors = {e.name for e in mesh3x3.element_neighbors("dsp_0_0")}
        assert neighbors == {"dsp_0_1", "dsp_1_0"}

    def test_center_element_has_four_neighbors(self, mesh3x3):
        assert mesh3x3.element_connectivity("dsp_1_1") == 4

    def test_element_pairs_count_matches_mesh_edges(self, mesh4x4):
        # element adjacency of a mesh mirrors the router mesh: 2*4*3 edges
        assert len(mesh4x4.element_pairs) == 24

    def test_pairs_are_sorted_and_unique(self, mesh3x3):
        seen = set()
        for a, b in mesh3x3.element_pairs:
            assert a.name < b.name
            key = (a.name, b.name)
            assert key not in seen
            seen.add(key)

    def test_adjacency_requires_frozen(self):
        platform = Platform()
        platform.add_element(element("a"))
        with pytest.raises(TopologyError):
            platform.element_neighbors("a")


class TestBuilders:
    def test_mesh_counts(self):
        platform = mesh(2, 5)
        assert len(platform.elements) == 10
        assert len(platform.routers) == 10
        # links: 10 endpoint + horizontal 2*4 + vertical 1*5
        assert len(platform.links) == 10 + 8 + 5

    def test_torus_has_wraparound(self):
        platform = torus(3, 3)
        assert platform.hop_distance("r_0_0", "r_0_2") == 1

    def test_line_is_mesh_1xn(self):
        platform = line(5)
        assert len(platform.elements) == 5
        assert platform.hop_distance("dsp_0_0", "dsp_0_4") == 6

    def test_irregular_stays_connected(self):
        for seed in range(5):
            platform = irregular(4, 4, drop_fraction=0.3, seed=seed)
            assert platform.is_connected()

    def test_irregular_deterministic(self):
        a = irregular(4, 4, seed=3)
        b = irregular(4, 4, seed=3)
        assert {l.key() for l in a.links} == {l.key() for l in b.links}

    def test_irregular_drops_links(self):
        full = mesh(4, 4)
        dropped = irregular(4, 4, drop_fraction=0.3, seed=1)
        assert len(dropped.links) < len(full.links)

    def test_heterogeneous_mesh_pattern(self):
        platform = heterogeneous_mesh(
            2, 2, pattern=(ElementType.DSP, ElementType.MEMORY)
        )
        kinds = sorted(e.kind.value for e in platform.elements)
        assert kinds == ["dsp", "dsp", "memory", "memory"]

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            mesh(0, 3)
        with pytest.raises(ValueError):
            torus(2, 3)
        with pytest.raises(ValueError):
            irregular(3, 3, drop_fraction=1.0)


class TestFatTree:
    def test_counts(self):
        platform = fat_tree(16, arity=4)
        # 16 leaf routers + 4 aggregators + 1 root
        assert len(platform.elements) == 16
        assert len(platform.routers) == 21
        # links: 16 endpoint + 16 leaf uplinks + 4 aggregator uplinks
        assert len(platform.links) == 36

    def test_is_frozen_and_connected(self):
        platform = fat_tree(16)
        assert platform.is_connected()
        with pytest.raises(TopologyError):
            platform.add_router(Router("extra"))

    def test_hop_distance_bounded_by_depth(self):
        platform = fat_tree(16, arity=4)
        # leaf -> root -> leaf plus the two endpoint hops
        assert platform.hop_distance("dsp_0_0", "dsp_0_15") == 6
        # siblings under one aggregator stay local
        assert platform.hop_distance("dsp_0_0", "dsp_0_1") == 4

    def test_shallower_than_mesh(self):
        tree = fat_tree(64, arity=4)
        grid = mesh(8, 8)
        tree_diameter = tree.hop_distance("dsp_0_0", "dsp_0_63")
        grid_diameter = grid.hop_distance("dsp_0_0", "dsp_7_7")
        assert tree_diameter < grid_diameter

    def test_links_widen_toward_root(self):
        platform = fat_tree(16, arity=4, virtual_channels=4,
                            bandwidth=100.0, fatness=2.0)
        by_vcs = {}
        for link in platform.links:
            if link.a.name.startswith("ft_r") and \
                    link.b.name.startswith("ft_r"):
                by_vcs.setdefault(link.virtual_channels, set()).add(
                    link.bandwidth
                )
        # leaf->aggregator at base width, aggregator->root doubled
        assert by_vcs == {4: {100.0}, 8: {200.0}}

    def test_uneven_leaf_count_still_connects(self):
        platform = fat_tree(10, arity=4)
        assert platform.is_connected()
        assert len(platform.elements) == 10

    def test_deterministic_construction(self):
        a = fat_tree(16)
        b = fat_tree(16)
        assert [n.name for n in a.nodes] == [n.name for n in b.nodes]
        assert {l.key() for l in a.links} == {l.key() for l in b.links}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            fat_tree(1)
        with pytest.raises(ValueError):
            fat_tree(8, arity=1)
        with pytest.raises(ValueError):
            fat_tree(8, fatness=0.5)


class TestCrisp:
    def test_element_census(self, crisp_platform):
        by_kind = {}
        for e in crisp_platform.elements:
            by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
        assert by_kind[ElementType.DSP] == CRISP_DSP_COUNT == 45
        assert by_kind[ElementType.MEMORY] == 10
        assert by_kind[ElementType.TEST] == 5
        assert by_kind[ElementType.GPP] == 1
        assert by_kind[ElementType.FPGA] == 1

    def test_connected(self, crisp_platform):
        assert crisp_platform.is_connected()

    def test_fpga_and_arm_at_opposite_ends(self, crisp_platform):
        distance = crisp_platform.hop_distance("fpga", "arm")
        # the chip chain is long: fpga -> 5 packages -> arm
        assert distance >= 20

    def test_less_connected_than_mesh(self, crisp_platform):
        """The paper: 'Compared to a fully meshed platform, the CRISP
        architecture is less connected.'"""
        crisp_links = len(crisp_platform.links)
        same_size_mesh = mesh(4, 16)  # 64 tiles, comparable scale
        assert crisp_links < len(same_size_mesh.links)

    def test_package_scaling(self):
        two = crisp(packages=2)
        assert sum(1 for e in two.elements if e.kind == ElementType.DSP) == 18

    def test_deterministic_construction(self):
        a = crisp()
        b = crisp()
        assert [n.name for n in a.nodes] == [n.name for n in b.nodes]


@given(rows=st.integers(1, 4), cols=st.integers(1, 4))
def test_mesh_property_connected_and_sized(rows, cols):
    platform = mesh(rows, cols)
    assert platform.is_connected()
    assert len(platform.elements) == rows * cols
