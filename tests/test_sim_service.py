"""Tests for the admission service: queue policies, backfill, faults.

The policy tests drive :class:`AdmissionService` directly with
hand-scheduled arrival events and explicit holding times, so every
admission decision is forced by construction; the fault and
end-to-end tests go through :func:`run_recipe` like the CLI does.
"""

from __future__ import annotations

import pytest

from repro.apps.generator import GeneratorConfig, generate
from repro.arch import mesh
from repro.arch.elements import ElementType
from repro.manager import Kairos
from repro.sim import (
    AdmissionRequest,
    AdmissionService,
    EventKernel,
    EventKind,
    FifoPolicy,
    PriorityPolicy,
    RejectPolicy,
    RetryPolicy,
    build_recipe,
    make_policy,
    run_recipe,
)


def big_app(seed: int):
    """Four hungry DSP tasks — one app fills a 2x2 mesh on its own."""
    return generate(
        GeneratorConfig(
            inputs=1, internals=2, outputs=1,
            target_kinds=((ElementType.DSP, 1.0),),
            utilization_low=0.7, utilization_high=0.9,
        ),
        seed=seed,
    )


def half_app(seed: int):
    """Two tasks at ~60% of a DSP each — exactly two such apps fit on
    a 2x2 mesh at a time (tasks cannot pair up on one element)."""
    return generate(
        GeneratorConfig(
            inputs=1, internals=0, outputs=1,
            target_kinds=((ElementType.DSP, 1.0),),
            utilization_low=0.55, utilization_high=0.65,
        ),
        seed=seed,
    )


def request(rid: int, *, arrival: float, holding: float, priority: int = 0,
            cls_name: str = "test") -> AdmissionRequest:
    return AdmissionRequest(
        request_id=rid,
        app=big_app(rid),
        app_id=f"{cls_name}#{rid}",
        class_name=cls_name,
        priority=priority,
        arrival_time=arrival,
        holding=holding,
    )


def drive(policy, requests, until=None):
    """Offer each (request) at its arrival time; run the kernel."""
    kernel = EventKernel(seed=0)
    manager = Kairos(mesh(2, 2), validation_mode="skip")
    service = AdmissionService(manager, policy, kernel)
    for req in requests:
        kernel.schedule_at(
            req.arrival_time, EventKind.ARRIVAL,
            lambda k, e: service.offer(e.payload["req"], k.now),
            req=req,
        )
    kernel.run(until=until)
    return service


def admit_order(service):
    return [r["id"] for r in service.trace.records if r["kind"] == "admit"]


class TestRejectPolicy:
    def test_drops_immediately(self):
        service = drive(RejectPolicy(), [
            request(1, arrival=0.0, holding=5.0),
            request(2, arrival=1.0, holding=5.0),
        ])
        assert service.metrics.admitted == 1
        assert service.metrics.drops == {"rejected": 1}
        assert service.metrics.waits == [0.0]
        assert service.metrics.blocking_probability == 0.5


class TestFifoPolicy:
    def test_backfill_on_departure(self):
        service = drive(FifoPolicy(capacity=4, timeout=None), [
            request(1, arrival=0.0, holding=5.0),
            request(2, arrival=1.0, holding=5.0),
        ])
        assert service.metrics.admitted == 2
        assert service.metrics.queued == 1
        # request 2 waited from t=1 until request 1 departed at t=5
        assert service.metrics.waits == [0.0, 4.0]
        assert service.metrics.departed == 2

    def test_queue_full_drops(self):
        service = drive(FifoPolicy(capacity=1, timeout=None), [
            request(1, arrival=0.0, holding=50.0),
            request(2, arrival=1.0, holding=5.0),
            request(3, arrival=2.0, holding=5.0),
        ], until=10.0)
        assert service.metrics.queued == 1
        assert service.metrics.drops == {"queue_full": 1}

    def test_timeout_expires_queued_requests(self):
        service = drive(FifoPolicy(capacity=4, timeout=2.0), [
            request(1, arrival=0.0, holding=50.0),
            request(2, arrival=1.0, holding=5.0),
        ], until=10.0)
        assert service.metrics.drops == {"timeout": 1}
        timeouts = [r for r in service.trace.records if r["kind"] == "drop"]
        assert timeouts[0]["t"] == 3.0  # enqueued at 1.0 + timeout 2.0

    def test_timed_out_head_unblocks_waiting_followers(self):
        """When the blocking head expires, followers that already fit
        must be admitted immediately, not left to their own timeouts."""
        def half(rid, arrival, holding):
            return AdmissionRequest(
                request_id=rid, app=half_app(rid), app_id=f"half#{rid}",
                class_name="test", priority=0, arrival_time=arrival,
                holding=holding,
            )
        long_half = half(1, arrival=0.0, holding=100.0)
        short_half = half(2, arrival=0.5, holding=3.0)  # departs at 3.5
        blocker = request(3, arrival=1.0, holding=5.0)  # needs the mesh
        follower = half(4, arrival=2.0, holding=5.0)
        service = drive(
            FifoPolicy(capacity=4, timeout=5.0),
            [long_half, short_half, blocker, follower],
            until=20.0,
        )
        # at t=3.5 the short app departs, but the full-platform head
        # still blocks the queue; the head times out at t=6 and the
        # follower (which fits from 3.5 onward) is admitted right
        # then, not dropped by its own t=7 timeout
        assert service.metrics.drops == {"timeout": 1}
        admits = {
            r["id"]: r["t"] for r in service.trace.records
            if r["kind"] == "admit"
        }
        assert admits["half#4"] == 6.0

    def test_admitted_before_timeout_is_not_expired(self):
        service = drive(FifoPolicy(capacity=4, timeout=10.0), [
            request(1, arrival=0.0, holding=5.0),
            request(2, arrival=1.0, holding=5.0),
        ])
        assert service.metrics.admitted == 2
        assert service.metrics.dropped == 0


class TestPriorityPolicy:
    def test_higher_priority_backfills_first(self):
        service = drive(PriorityPolicy(capacity=4, timeout=None), [
            request(1, arrival=0.0, holding=5.0),
            request(2, arrival=1.0, holding=5.0, priority=0),
            request(3, arrival=2.0, holding=5.0, priority=5),
        ])
        # the platform fits one app at a time: after #1 departs the
        # high-priority #3 overtakes #2 despite arriving later
        assert admit_order(service) == ["test#1", "test#3", "test#2"]
        assert service.metrics.admitted == 3

    def test_fifo_within_equal_priority(self):
        service = drive(PriorityPolicy(capacity=4, timeout=None), [
            request(1, arrival=0.0, holding=5.0),
            request(2, arrival=1.0, holding=5.0, priority=1),
            request(3, arrival=2.0, holding=5.0, priority=1),
        ])
        assert admit_order(service) == ["test#1", "test#2", "test#3"]


class TestRetryPolicy:
    def test_exponential_backoff_then_exhaustion(self):
        service = drive(
            RetryPolicy(max_attempts=3, base_delay=2.0, backoff=2.0),
            [
                request(1, arrival=0.0, holding=100.0),
                request(2, arrival=1.0, holding=5.0),
            ],
            until=50.0,
        )
        assert service.metrics.retries == 2
        assert service.metrics.drops == {"retries_exhausted": 1}
        retry_times = [
            r["t"] for r in service.trace.records if r["kind"] == "retry"
        ]
        # rejected at t=1 -> retry at +2, rejected -> retry at +4
        assert retry_times == [3.0, 7.0]

    def test_retry_succeeds_after_capacity_frees(self):
        service = drive(
            RetryPolicy(max_attempts=5, base_delay=3.0, backoff=2.0),
            [
                request(1, arrival=0.0, holding=5.0),
                request(2, arrival=1.0, holding=5.0),
            ],
            until=50.0,
        )
        assert service.metrics.admitted == 2
        assert service.metrics.dropped == 0
        assert service.metrics.retries >= 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)


class TestPolicyRegistry:
    def test_make_policy_round_trip(self):
        policy = make_policy("fifo", {"capacity": 3, "timeout": 7.0})
        assert isinstance(policy, FifoPolicy)
        assert policy.describe() == {
            "name": "fifo", "params": {"capacity": 3, "timeout": 7.0},
        }

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("lifo")

    def test_bounded_queue_validation(self):
        with pytest.raises(ValueError):
            FifoPolicy(capacity=0)
        with pytest.raises(ValueError):
            PriorityPolicy(timeout=-1.0)


class TestEndToEnd:
    def test_simulation_is_deterministic(self):
        recipe = build_recipe(
            platform="5x5", duration=25.0, seed=11, policy="fifo",
            rate_scale=3.0,
        )
        first = run_recipe(recipe)
        second = run_recipe(recipe)
        assert first.trace == second.trace
        first_summary = first.metrics.summary()
        second_summary = second.metrics.summary()
        # the per-phase latency histograms are wall-clock measurements,
        # not decisions — everything else must reproduce exactly
        first_latency = first_summary.pop("phase_latency")
        second_latency = second_summary.pop("phase_latency")
        assert first_summary == second_summary
        # same phases ran the same number of times, just not as fast
        assert {
            phase: row["count"] for phase, row in first_latency.items()
        } == {
            phase: row["count"] for phase, row in second_latency.items()
        }

    def test_overload_produces_blocking_and_waits(self):
        recipe = build_recipe(
            platform="4x4", duration=30.0, seed=2, policy="fifo",
            rate_scale=5.0,
        )
        result = run_recipe(recipe)
        summary = result.metrics.summary()
        assert summary["offered"] > 20
        assert 0.0 < summary["blocking_probability"] < 1.0
        waits = summary["admission_wait"]
        assert waits["p99"] >= waits["p95"] >= waits["p50"] >= 0.0
        assert summary["per_class"].keys() == {
            "interactive", "batch", "bursty",
        }
        for stats in summary["per_class"].values():
            assert 0.0 <= stats["admission_ratio"] <= 1.0
        assert result.post_drain_utilization == 0.0

    def test_samples_cover_the_run(self):
        recipe = build_recipe(
            platform="4x4", duration=20.0, seed=4, policy="reject",
            rate_scale=2.0, sample_interval=5.0,
        )
        result = run_recipe(recipe)
        times = [s.time for s in result.metrics.samples]
        assert times == [5.0, 10.0, 15.0, 20.0]
        for sample in result.metrics.samples:
            assert 0.0 <= sample.utilization <= 1.0
            assert sample.queue_depth == 0  # reject policy never queues


class TestReviewRegressions:
    def test_request_without_holding_or_class_rejected_before_allocate(self):
        kernel = EventKernel(seed=0)
        manager = Kairos(mesh(2, 2), validation_mode="skip")
        service = AdmissionService(manager, RejectPolicy(), kernel)
        bad = AdmissionRequest(
            request_id=1, app=big_app(1), app_id="bad#1",
            class_name="test", priority=0, arrival_time=0.0,
        )
        with pytest.raises(ValueError):
            service.offer(bad, 0.0)
        # the check fires before Kairos.allocate: nothing leaked
        assert manager.admitted == {}
        assert manager.utilization() == 0.0

    def test_reused_policy_with_queued_requests_rejected(self):
        from repro.sim import SimulationConfig, run_simulation
        from repro.sim.traffic import default_traffic_classes

        policy = FifoPolicy(capacity=4, timeout=None)
        policy.queue.append(
            request(99, arrival=0.0, holding=1.0)
        )  # leftover state from a "previous run"
        with pytest.raises(ValueError):
            run_simulation(
                mesh(3, 3), default_traffic_classes(pool_size=2), policy,
                SimulationConfig(duration=5.0),
            )

    def test_traffic_classes_reusable_across_runs(self):
        """MMPP phase state must reset, so one classes tuple gives
        identical traces on back-to-back runs."""
        from repro.sim import SimulationConfig, run_simulation
        from repro.sim.traffic import default_traffic_classes

        classes = default_traffic_classes(seed=3, rate_scale=2.0, pool_size=2)
        runs = [
            run_simulation(
                mesh(3, 3), classes, RejectPolicy(),
                SimulationConfig(duration=10.0, seed=3),
            )
            for _ in range(2)
        ]
        assert runs[0].trace == runs[1].trace

    def test_drained_drops_do_not_count_as_blocking(self):
        """Requests still waiting at the horizon are censored, not
        blocked: flushing them must leave the blocking ratio alone."""
        service = drive(FifoPolicy(capacity=4, timeout=None), [
            request(1, arrival=0.0, holding=50.0),
            request(2, arrival=1.0, holding=5.0),
        ], until=10.0)
        service.policy.flush(service, 10.0)
        assert service.metrics.drops == {"drained": 1}
        assert service.metrics.blocking_probability == 0.0

    def test_per_class_wait_p95_is_reported(self):
        service = drive(FifoPolicy(capacity=4, timeout=None), [
            request(1, arrival=0.0, holding=5.0),
            request(2, arrival=1.0, holding=5.0),
        ])
        per_class = service.metrics.summary()["per_class"]["test"]
        assert per_class["wait_p95"] == 4.0  # the backfilled request

    def test_fault_beyond_horizon_rejected(self):
        from repro.arch.faults import Fault
        from repro.sim import SimulationConfig, run_simulation
        from repro.sim.traffic import default_traffic_classes

        with pytest.raises(ValueError):
            run_simulation(
                mesh(3, 3), default_traffic_classes(pool_size=2),
                RejectPolicy(), SimulationConfig(duration=5.0),
                faults=((6.0, Fault("element", ("dsp_0_0",))),),
            )

    def test_short_run_still_gets_a_final_sample(self):
        recipe = build_recipe(
            platform="3x3", duration=3.0, seed=0, policy="reject",
            rate_scale=2.0, sample_interval=5.0,
        )
        result = run_recipe(recipe)
        assert [s.time for s in result.metrics.samples] == [3.0]


class TestFaultsUnderLoad:
    """Satellite: scheduled faults mid-traffic with automatic recovery."""

    @pytest.fixture(scope="class")
    def faulted_run(self):
        recipe = build_recipe(
            platform="6x6", duration=40.0, seed=7, policy="fifo",
            rate_scale=3.0, faults=3,
        )
        return run_recipe(recipe)

    def test_every_fault_injected_and_traced(self, faulted_run):
        assert faulted_run.metrics.faults_injected == 3
        fault_records = [
            r for r in faulted_run.trace if r["kind"] == "fault"
        ]
        assert len(fault_records) == 3
        # faults are spread over the run, not bunched at t=0
        assert all(0.0 < r["t"] < 40.0 for r in fault_records)

    def test_stranded_apps_recovered_or_reported_lost(self, faulted_run):
        recoveries = [
            r for r in faulted_run.trace if r["kind"] == "recovery"
        ]
        assert len(recoveries) == 3
        stranded_total = 0
        for record in recoveries:
            stranded = set(record["stranded"])
            resolved = set(record["recovered"]) | set(record["lost"])
            assert resolved == stranded
            stranded_total += len(stranded)
        assert stranded_total == (
            faulted_run.metrics.recovered + faulted_run.metrics.lost
        )

    def test_lost_apps_never_depart_afterwards(self, faulted_run):
        lost_at: dict[str, float] = {}
        for record in faulted_run.trace:
            if record["kind"] == "recovery":
                for app_id in record["lost"]:
                    lost_at[app_id] = record["t"]
        departures = {
            r["id"]: r["t"] for r in faulted_run.trace
            if r["kind"] == "departure"
        }
        for app_id, when in lost_at.items():
            assert (
                app_id not in departures or departures[app_id] < when
            ), f"{app_id} departed after being lost"

    def test_drained_platform_ends_at_zero_utilization(self, faulted_run):
        assert faulted_run.post_drain_utilization == 0.0
