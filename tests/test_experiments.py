"""Tests for the experiment harness and the table/figure generators.

These run at smoke scale (tiny datasets, few sequences) — the full
paper-scale runs live in the benchmark suite.  The assertions check
the *protocol* (filtering, sequencing, aggregation, rendering), plus
the coarse qualitative shapes that survive even tiny runs.
"""

from __future__ import annotations

import pytest

from repro.apps.datasets import DatasetSpec
from repro.core import NAMED_WEIGHTS, BOTH
from repro.experiments import (
    HarnessScale,
    case_study_timing,
    default_platform,
    format_fig10,
    format_fig7,
    format_fig8,
    format_fig9,
    format_table1,
    prepare_dataset,
    run_dataset_sequences,
    run_fig10,
    run_fig89,
    run_sequence,
)
from repro.experiments.reporting import (
    admission_matrix,
    ascii_table,
    series_block,
)
from repro.manager import Phase
from repro.manager.metrics import failure_distribution, summarize_positions

TINY = HarnessScale(applications=8, sequences=2, positions=8)


@pytest.fixture(scope="module")
def platform():
    return default_platform()


@pytest.fixture(scope="module")
def prepared_comm_small(platform):
    return prepare_dataset(
        DatasetSpec("communication", "small"),
        applications=TINY.applications, seed=0, platform=platform,
    )


class TestHarness:
    def test_filter_keeps_only_mappable(self, prepared_comm_small):
        assert 0 < prepared_comm_small.surviving <= TINY.applications
        assert prepared_comm_small.generated == TINY.applications

    def test_filter_does_not_leak_allocations(self, platform, prepared_comm_small):
        # a fresh manager on the shared platform sees an empty state
        from repro.manager import Kairos
        manager = Kairos(platform)
        assert manager.utilization() == 0.0

    def test_run_sequence_records_every_position(self, prepared_comm_small, platform):
        recorder = run_sequence(
            prepared_comm_small.applications, BOTH, platform,
        )
        assert len(recorder.records) == prepared_comm_small.surviving
        positions = [r.position for r in recorder.records]
        assert positions == list(range(1, len(positions) + 1))

    def test_sequences_are_shuffled_deterministically(self, prepared_comm_small, platform):
        first = run_dataset_sequences(
            prepared_comm_small, BOTH, sequences=2, seed=3, platform=platform,
        )
        second = run_dataset_sequences(
            prepared_comm_small, BOTH, sequences=2, seed=3, platform=platform,
        )
        names_first = [[r.app_name for r in rec.records] for rec in first]
        names_second = [[r.app_name for r in rec.records] for rec in second]
        assert names_first == names_second
        # different sequences within a run use different orders
        if prepared_comm_small.surviving > 3:
            assert names_first[0] != names_first[1]

    def test_positions_cap(self, prepared_comm_small, platform):
        recorder = run_sequence(
            prepared_comm_small.applications, BOTH, platform, positions=3,
        )
        assert len(recorder.records) <= 3

    def test_scale_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_APPS", "7")
        monkeypatch.setenv("REPRO_SEQUENCES", "2")
        scale = HarnessScale.from_environment()
        assert scale.applications == 7
        assert scale.sequences == 2


class TestTable1Protocol:
    def test_failure_distribution_sums_to_100(self, prepared_comm_small, platform):
        recorders = run_dataset_sequences(
            prepared_comm_small, BOTH, sequences=2, seed=0, platform=platform,
        )
        distribution = failure_distribution(recorders)
        total = sum(distribution.values())
        assert total == pytest.approx(100.0) or total == 0.0

    def test_format_table1_renders(self):
        from repro.experiments.table1 import Table1Result, Table1Row
        result = Table1Result(
            rows=[Table1Row("communication_small", "Communication Small",
                            9, 1.0, 0.0, 99.0)],
            scale=TINY,
        )
        text = format_table1(result, include_paper=True)
        assert "Communication Small" in text
        assert "(paper, for reference)" in text

    def test_dominant_phase(self):
        from repro.experiments.table1 import Table1Row
        row = Table1Row("x", "X", 5, 10.0, 0.0, 90.0)
        assert row.dominant_phase() == "routing"


class TestFig89:
    def test_run_and_render(self, platform):
        result = run_fig89(
            scale=HarnessScale(applications=6, sequences=1, positions=6),
            seed=0, platform=platform,
            objectives={"None": NAMED_WEIGHTS["None"],
                        "Both": NAMED_WEIGHTS["Both"]},
        )
        assert set(result.series) == {"None", "Both"}
        both = result.objective("Both")
        assert len(both.summaries) == 6
        assert all(0 <= rate <= 100 for rate in both.success_rate())
        assert all(0 <= frag <= 100 for frag in both.fragmentation())
        text8 = format_fig8(result)
        text9 = format_fig9(result)
        assert "hops/channel" in text8
        assert "fragmentation %" in text9


class TestFig10:
    def test_tiny_grid(self, platform):
        result = run_fig10(
            comm_weights=(0, 2), frag_weights=(0, 100), platform=platform,
        )
        assert len(result.admitted) == 4
        # the paper's strongest claim we reproduce: zero communication
        # weight never admits the beamformer
        assert not result.column_admits(0)
        text = format_fig10(result)
        assert "admission" in text

    def test_failures_tagged_by_phase(self, platform):
        result = run_fig10(
            comm_weights=(0,), frag_weights=(0,), platform=platform,
        )
        assert result.failures[(0, 0)] in ("binding", "mapping", "routing")

    def test_case_study_timing(self, platform):
        timings = case_study_timing(platform=platform, repeats=1)
        ms = timings.as_milliseconds()
        assert all(value > 0 for value in ms.values())
        # the paper's shape: mapping is cheap relative to binding
        assert ms["mapping"] < ms["binding"]


class TestReporting:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "long header"], [[1, 2.5], [10, None]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width
        assert "-" in lines[1]
        assert " -" in text or "- " in text  # None rendered as '-'

    def test_series_block(self):
        text = series_block("s", [1, 2, 3], [0.5, None, 1.5])
        assert "[s]" in text
        assert text.count("\n") == 2

    def test_admission_matrix(self):
        text = admission_matrix(
            (0, 1), (0, 10),
            {(0, 0): False, (1, 0): True, (0, 10): False, (1, 10): True},
        )
        assert ".#" in text
