"""Tests for the TGFF-like generator and the six paper datasets."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import GeneratorConfig, generate, make_dataset
from repro.apps.beamforming import (
    DSP_TASKS,
    TOTAL_TASKS,
    beamforming_application,
)
from repro.apps.datasets import (
    ALL_SPECS,
    PROFILE_UTILIZATION,
    SIZE_BOUNDS,
    DatasetSpec,
)
from repro.apps.generator import GenerationError
from repro.arch import ElementType
from repro.arch.elements import default_capacity


class TestGeneratorStructure:
    def test_task_counts(self):
        app = generate(GeneratorConfig(inputs=2, internals=5, outputs=2), seed=0)
        assert len(app) == 9
        assert len(app.roles("input")) == 2
        assert len(app.roles("output")) == 2

    def test_connected(self):
        for seed in range(20):
            app = generate(GeneratorConfig(inputs=2, internals=4, outputs=2),
                           seed=seed)
            assert app.is_connected(), f"seed {seed} disconnected"

    def test_inputs_have_no_predecessors(self):
        for seed in range(10):
            app = generate(GeneratorConfig(inputs=2, internals=4, outputs=1),
                           seed=seed)
            for task in app.roles("input"):
                assert app.predecessors(task.name) == ()

    def test_outputs_have_no_successors(self):
        for seed in range(10):
            app = generate(GeneratorConfig(inputs=1, internals=4, outputs=2),
                           seed=seed)
            for task in app.roles("output"):
                assert app.successors(task.name) == ()

    def test_degree_caps_respected(self):
        config = GeneratorConfig(
            inputs=2, internals=8, outputs=2, max_in_degree=2, max_out_degree=2,
            extra_edge_probability=0.9,
        )
        for seed in range(10):
            app = generate(config, seed=seed)
            for task in app.tasks:
                in_degree = len([
                    c for c in app.channels.values() if c.target == task
                ])
                # the connectivity fix-up may exceed the cap by at most
                # the number of components it had to bridge; in practice
                # one — tolerate a single overflow
                assert in_degree <= config.max_in_degree + 1

    def test_deterministic_per_seed(self):
        config = GeneratorConfig(inputs=1, internals=5, outputs=1)
        a = generate(config, seed=9)
        b = generate(config, seed=9)
        assert set(a.tasks) == set(b.tasks)
        assert {
            (c.source, c.target, round(c.bandwidth, 9))
            for c in a.channels.values()
        } == {
            (c.source, c.target, round(c.bandwidth, 9))
            for c in b.channels.values()
        }

    def test_different_seeds_differ(self):
        config = GeneratorConfig(inputs=1, internals=6, outputs=1,
                                 extra_edge_probability=0.5)
        a = generate(config, seed=1)
        b = generate(config, seed=2)
        edges_a = {(c.source, c.target) for c in a.channels.values()}
        edges_b = {(c.source, c.target) for c in b.channels.values()}
        assert edges_a != edges_b

    def test_validates(self):
        for seed in range(10):
            generate(GeneratorConfig(inputs=1, internals=3, outputs=1),
                     seed=seed).validate()


class TestGeneratorAnnotations:
    def test_utilization_bounds(self):
        config = GeneratorConfig(
            inputs=1, internals=5, outputs=1,
            utilization_low=0.7, utilization_high=1.0,
            pin_io_probability=0.0,
        )
        app = generate(config, seed=3)
        for task in app:
            for impl in task.implementations:
                capacity = default_capacity(impl.target_kind)
                ratio = impl.requirement.bottleneck(capacity)
                assert 0.5 <= ratio <= 1.0  # integer floor can lower it

    def test_bandwidth_bounds(self):
        config = GeneratorConfig(inputs=1, internals=4, outputs=1,
                                 bandwidth_low=5.0, bandwidth_high=9.0)
        app = generate(config, seed=4)
        for channel in app.channels.values():
            assert 5.0 <= channel.bandwidth <= 9.0

    def test_pinned_io(self):
        config = GeneratorConfig(
            inputs=2, internals=2, outputs=2,
            pin_io_probability=1.0, io_elements=("fpga", "arm"),
        )
        app = generate(config, seed=5)
        for task in app.roles("input") + app.roles("output"):
            assert len(task.implementations) == 1
            assert task.implementations[0].pinned
            assert task.implementations[0].target_element in ("fpga", "arm")

    def test_pinning_requires_elements(self):
        with pytest.raises(GenerationError):
            GeneratorConfig(pin_io_probability=0.5, io_elements=())

    def test_config_validation(self):
        with pytest.raises(GenerationError):
            GeneratorConfig(inputs=0)
        with pytest.raises(GenerationError):
            GeneratorConfig(max_in_degree=0)
        with pytest.raises(GenerationError):
            GeneratorConfig(utilization_low=0.9, utilization_high=0.5)
        with pytest.raises(GenerationError):
            GeneratorConfig(min_implementations=3, max_implementations=1)


@settings(max_examples=30, deadline=None)
@given(
    inputs=st.integers(1, 3),
    internals=st.integers(0, 8),
    outputs=st.integers(0, 3),
    seed=st.integers(0, 1000),
)
def test_generator_property_connected_and_sized(inputs, internals, outputs, seed):
    app = generate(
        GeneratorConfig(inputs=inputs, internals=internals, outputs=outputs),
        seed=seed,
    )
    assert len(app) == inputs + internals + outputs
    assert app.is_connected()
    for task in app:
        assert task.implementations


class TestDatasets:
    def test_six_specs(self):
        assert len(ALL_SPECS) == 6
        names = {spec.name for spec in ALL_SPECS}
        assert "communication_small" in names
        assert "computation_large" in names

    def test_size_bounds_respected(self):
        for spec in ALL_SPECS:
            low, high = SIZE_BOUNDS[spec.size]
            apps = make_dataset(spec, count=15, seed=0)
            assert len(apps) == 15
            for app in apps:
                assert low <= len(app) <= high

    def test_utilization_profile_respected(self):
        spec = DatasetSpec("computation", "small")
        low, high = PROFILE_UTILIZATION["computation"]
        apps = make_dataset(spec, count=10, seed=0)
        for app in apps:
            for task in app:
                for impl in task.implementations:
                    if impl.pinned:
                        continue
                    capacity = default_capacity(impl.target_kind)
                    ratio = impl.requirement.bottleneck(capacity)
                    assert ratio >= low - 0.05

    def test_deterministic_across_calls(self):
        spec = DatasetSpec("communication", "medium")
        a = make_dataset(spec, count=5, seed=42)
        b = make_dataset(spec, count=5, seed=42)
        for app_a, app_b in zip(a, b):
            assert set(app_a.tasks) == set(app_b.tasks)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            DatasetSpec("quantum", "small")
        with pytest.raises(ValueError):
            DatasetSpec("communication", "jumbo")

    def test_labels(self):
        assert DatasetSpec("communication", "small").label == "Communication Small"


class TestBeamformer:
    def test_task_census(self, beamformer):
        assert len(beamformer) == TOTAL_TASKS == 53

    def test_dsp_task_count_matches_platform(self, beamformer):
        dsp_tasks = [
            t for t in beamformer
            if any(
                i.target_kind == ElementType.DSP for i in t.implementations
            )
        ]
        assert len(dsp_tasks) == DSP_TASKS == 45

    def test_tree_like(self, beamformer):
        """Tree-like: connected with modest edge surplus over a tree."""
        assert beamformer.is_connected()
        surplus = len(beamformer.channels) - (len(beamformer) - 1)
        assert 0 <= surplus <= 10

    def test_anchored_io(self, beamformer):
        for index in range(4):
            impls = beamformer.task(f"ant{index}").implementations
            assert impls[0].target_element == "fpga"
        assert beamformer.task("output").implementations[0].target_element == "arm"

    def test_has_constraints(self, beamformer):
        assert len(beamformer.constraints) == 2

    def test_validates(self, beamformer):
        beamformer.validate()
