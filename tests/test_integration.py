"""Cross-module integration tests: full allocation pipelines on
multiple platforms, binary round trips through the manager, admission
sequences, and end-to-end fault recovery on CRISP."""

from __future__ import annotations

import pytest

from repro.apps import (
    GeneratorConfig,
    beamforming_application,
    generate,
    make_dataset,
)
from repro.apps.datasets import DatasetSpec
from repro.arch import ElementType, crisp, heterogeneous_mesh, irregular, mesh
from repro.core import BOTH, CostWeights
from repro.io import pack_application, unpack_application
from repro.manager import AllocationFailure, Kairos, generate_plan
from repro.routing import DijkstraRouter


def small_app(seed=0):
    return generate(
        GeneratorConfig(inputs=1, internals=3, outputs=1,
                        utilization_low=0.2, utilization_high=0.5),
        seed=seed,
    )


class TestFullPipelineAcrossPlatforms:
    @pytest.mark.parametrize("platform_factory", [
        lambda: mesh(4, 4),
        lambda: heterogeneous_mesh(4, 4),
        lambda: irregular(4, 4, drop_fraction=0.2, seed=2),
        lambda: crisp(packages=2),
    ], ids=["mesh", "hetmesh", "irregular", "crisp2"])
    def test_allocate_on_platform(self, platform_factory):
        """The generic-platform claim: the same manager allocates the
        same app on meshes, heterogeneous grids, irregular fabrics and
        the CRISP chain."""
        platform = platform_factory()
        manager = Kairos(platform, validation_mode="report")
        layout = manager.allocate(small_app())
        assert layout.validation is not None
        assert layout.validation.throughput.of(
            next(iter(layout.placement))
        ) >= 0
        manager.release(layout.app_id)
        assert manager.utilization() == 0.0

    def test_dijkstra_router_variant(self):
        manager = Kairos(mesh(4, 4), router=DijkstraRouter())
        layout = manager.allocate(small_app())
        assert layout.routes or layout.local_channels


class TestBeamformerEndToEnd:
    def test_case_study_pipeline(self):
        manager = Kairos(crisp(), weights=CostWeights(1, 1),
                         validation_mode="report")
        app = beamforming_application()
        layout = manager.allocate(app)
        # all 45 DSPs used (the paper: "requires all 45 DSPs")
        dsp_elements = {
            element for element in layout.placement.values()
            if manager.platform.element(element).kind == ElementType.DSP
        }
        assert len(dsp_elements) == 45
        # constraints hold on the admitted layout
        assert layout.validation.satisfied
        # bootstrap plan covers the full layout
        plan = generate_plan(app, layout)
        assert len(plan.loads()) == 53
        manager.release(layout.app_id)
        assert manager.external_fragmentation() == 0.0

    def test_binary_roundtrip_through_manager(self):
        """Pack the beamformer, load it back, allocate the copy: the
        'binary handler' workflow of Section III-E."""
        manager = Kairos(crisp(), weights=CostWeights(1, 1),
                         validation_mode="skip")
        data = pack_application(beamforming_application())
        restored = unpack_application(data)
        layout = manager.allocate(restored)
        assert len(layout.placement) == 53


class TestAdmissionSequence:
    def test_sequence_saturates_then_rejects(self):
        manager = Kairos(crisp(), weights=BOTH, validation_mode="skip")
        apps = make_dataset(
            DatasetSpec("computation", "small"), count=30, seed=3
        )
        admitted = rejected = 0
        for index, app in enumerate(apps):
            try:
                manager.allocate(app, f"a{index}")
                admitted += 1
            except AllocationFailure:
                rejected += 1
        # "Relatively early in the sequence, most platform resources
        # are allocated, resulting in rejection of the remaining
        # applications."
        assert admitted >= 5
        assert rejected >= 5
        assert manager.utilization() > 0.4

    def test_release_mid_sequence_frees_capacity(self):
        manager = Kairos(crisp(), weights=BOTH, validation_mode="skip")
        apps = make_dataset(
            DatasetSpec("computation", "small"), count=40, seed=4
        )
        # fill to first rejection
        admitted_ids = []
        failed_app = None
        for index, app in enumerate(apps):
            try:
                layout = manager.allocate(app, f"a{index}")
                admitted_ids.append(layout.app_id)
            except AllocationFailure:
                failed_app = app
                break
        if failed_app is None:
            pytest.skip("platform absorbed the whole dataset")
        # release half the admitted applications and retry
        for app_id in admitted_ids[: len(admitted_ids) // 2]:
            manager.release(app_id)
        manager.allocate(failed_app, "retry")  # must now succeed

    def test_fragmentation_metric_moves_with_occupancy(self):
        manager = Kairos(crisp(), weights=BOTH, validation_mode="skip")
        assert manager.external_fragmentation() == 0.0
        layouts = []
        apps = make_dataset(
            DatasetSpec("communication", "small"), count=6, seed=5
        )
        for index, app in enumerate(apps):
            try:
                layouts.append(manager.allocate(app, f"a{index}"))
            except AllocationFailure:
                pass
        if layouts:
            assert manager.external_fragmentation() > 0.0
        for layout in layouts:
            manager.release(layout.app_id)
        assert manager.external_fragmentation() == 0.0


class TestFaultRecoveryOnCrisp:
    def test_dsp_failure_recovery(self):
        manager = Kairos(crisp(), weights=BOTH, validation_mode="skip")
        app = generate(
            GeneratorConfig(inputs=1, internals=3, outputs=1,
                            utilization_low=0.3, utilization_high=0.6),
            seed=21,
        )
        layout = manager.allocate(app, "victim")
        dsp_used = next(
            (element for element in layout.placement.values()
             if manager.platform.element(element).kind == ElementType.DSP),
            None,
        )
        if dsp_used is None:
            pytest.skip("no DSP used by this app")
        manager.state.fail_element(dsp_used)
        report = manager.recover({"victim": app})
        assert "victim" in report.recovered
        new_layout = report.recovered["victim"]
        assert dsp_used not in new_layout.placement.values()

    def test_beamformer_cannot_survive_dsp_loss(self):
        """The beamformer needs all 45 DSPs: losing any one is fatal."""
        manager = Kairos(crisp(), weights=CostWeights(1, 1),
                         validation_mode="skip")
        app = beamforming_application()
        manager.allocate(app, "beam")
        manager.state.fail_element("p2_dsp_1_0")
        report = manager.recover({"beam": app})
        assert "beam" in report.lost
