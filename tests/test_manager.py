"""Tests for the Kairos manager: phases, atomicity, release, recovery,
bootstrap plans and metrics."""

from __future__ import annotations

import pytest

from repro.apps import GeneratorConfig, ThroughputConstraint, generate
from repro.arch import ResourceVector, mesh
from repro.manager import (
    AllocationFailure,
    Kairos,
    Phase,
    SequenceRecorder,
    failure_distribution,
    generate_plan,
    summarize_positions,
    timings_by_task_count,
)
from repro.manager.bootstrap import LoadTask, ProgramRoute, StartTask
from tests.conftest import chain_app, diamond_app


class TestAllocate:
    def test_successful_allocation(self, mesh3x3):
        manager = Kairos(mesh3x3)
        app = chain_app(3)
        layout = manager.allocate(app)
        assert set(layout.placement) == set(app.tasks)
        assert layout.app_id in manager.admitted
        assert layout.timings.total > 0

    def test_phase_timings_populated(self, mesh3x3):
        manager = Kairos(mesh3x3, validation_mode="report")
        layout = manager.allocate(chain_app(3))
        ms = layout.timings.as_milliseconds()
        assert set(ms) == {"binding", "mapping", "routing", "validation"}
        assert all(v >= 0 for v in ms.values())

    def test_skip_validation_mode(self, mesh3x3):
        manager = Kairos(mesh3x3, validation_mode="skip")
        layout = manager.allocate(chain_app(3))
        assert layout.validation is None
        assert layout.timings.validation == 0.0

    def test_unknown_validation_mode_rejected(self, mesh3x3):
        with pytest.raises(ValueError):
            Kairos(mesh3x3, validation_mode="maybe")

    def test_binding_failure_phase_tagged(self, mesh3x3):
        manager = Kairos(mesh3x3)
        app = chain_app(3, cycles=1000)  # fits nowhere
        with pytest.raises(AllocationFailure) as info:
            manager.allocate(app)
        assert info.value.phase is Phase.BINDING

    def test_invalid_app_rejected_as_binding_failure(self, mesh3x3):
        from repro.apps import Application
        manager = Kairos(mesh3x3)
        with pytest.raises(AllocationFailure) as info:
            manager.allocate(Application("empty"))
        assert info.value.phase is Phase.BINDING

    def test_failure_rolls_back_state(self, mesh3x3):
        manager = Kairos(mesh3x3)
        baseline = manager.state.snapshot()
        with pytest.raises(AllocationFailure):
            manager.allocate(chain_app(3, cycles=1000))
        assert manager.state.snapshot() == baseline
        assert manager.admitted == {}

    def test_enforce_mode_rejects_violations(self, mesh3x3):
        manager = Kairos(mesh3x3, validation_mode="enforce")
        app = chain_app(3)
        app.add_constraint(ThroughputConstraint(1e9))
        baseline = manager.state.snapshot()
        with pytest.raises(AllocationFailure) as info:
            manager.allocate(app)
        assert info.value.phase is Phase.VALIDATION
        assert manager.state.snapshot() == baseline

    def test_report_mode_admits_violations(self, mesh3x3):
        manager = Kairos(mesh3x3, validation_mode="report")
        app = chain_app(3)
        app.add_constraint(ThroughputConstraint(1e9))
        layout = manager.allocate(app)
        assert not layout.validation.satisfied

    def test_duplicate_app_id_rejected(self, mesh3x3):
        manager = Kairos(mesh3x3)
        manager.allocate(chain_app(2), "same")
        with pytest.raises(ValueError):
            manager.allocate(chain_app(2), "same")

    def test_auto_app_ids_unique(self, mesh3x3):
        manager = Kairos(mesh3x3)
        first = manager.allocate(chain_app(2))
        second = manager.allocate(chain_app(2))
        assert first.app_id != second.app_id

    def test_routing_failure_tagged(self):
        # a 1x2 platform: tasks fit but cross-traffic saturates the
        # single corridor after several allocations
        platform = mesh(1, 2, virtual_channels=1,
                        endpoint_virtual_channels=1)
        manager = Kairos(platform, validation_mode="skip")
        phases = []
        for index in range(4):
            app = chain_app(2, cycles=20)
            try:
                manager.allocate(app, f"a{index}")
            except AllocationFailure as failure:
                phases.append(failure.phase)
        assert Phase.ROUTING in phases


class TestRelease:
    def test_release_restores_resources(self, mesh3x3):
        manager = Kairos(mesh3x3)
        baseline = manager.state.snapshot()
        layout = manager.allocate(diamond_app())
        manager.release(layout.app_id)
        after = manager.state.snapshot()
        after.pop("wear")   # wear and epoch odometers survive release
        baseline.pop("wear")
        after.pop("epoch")
        baseline.pop("epoch")
        assert after == baseline
        assert manager.admitted == {}

    def test_release_unknown_id_rejected(self, mesh3x3):
        with pytest.raises(KeyError):
            Kairos(mesh3x3).release("ghost")

    def test_release_all(self, mesh3x3):
        manager = Kairos(mesh3x3)
        manager.allocate(chain_app(2), "a")
        manager.allocate(chain_app(2), "b")
        manager.release_all()
        assert manager.admitted == {}
        assert manager.utilization() == 0.0

    def test_admit_release_cycles_stable(self, mesh3x3):
        """Admitting and releasing repeatedly never leaks resources."""
        manager = Kairos(mesh3x3)
        baseline = manager.state.snapshot()
        for _ in range(5):
            layout = manager.allocate(diamond_app())
            manager.release(layout.app_id)
        after = manager.state.snapshot()
        after.pop("wear")   # wear and epoch odometers survive release
        baseline.pop("wear")
        after.pop("epoch")
        baseline.pop("epoch")
        assert after == baseline


class TestRecovery:
    def test_stranded_detection_by_element(self, mesh3x3):
        manager = Kairos(mesh3x3)
        app = chain_app(3)
        layout = manager.allocate(app, "victim")
        element = layout.placement["t1"]
        manager.state.fail_element(element)
        assert manager.stranded_by_faults() == ("victim",)

    def test_stranded_detection_by_route(self, mesh3x3):
        manager = Kairos(mesh3x3)
        app = chain_app(2)
        layout = manager.allocate(app, "victim")
        route = next(iter(layout.routes.values()), None)
        if route is None:
            pytest.skip("tasks co-located; no route to fail")
        a, b = route.path[0], route.path[1]
        manager.state.fail_link(a, b)
        assert manager.stranded_by_faults() == ("victim",)

    def test_recover_remaps_victim(self, mesh3x3):
        manager = Kairos(mesh3x3)
        app = chain_app(3, cycles=30)
        layout = manager.allocate(app, "victim")
        manager.state.fail_element(layout.placement["t0"])
        report = manager.recover({"victim": app})
        assert report.stranded == ("victim",)
        assert "victim" in report.recovered
        new_layout = report.recovered["victim"]
        assert new_layout.placement["t0"] != layout.placement["t0"]

    def test_recover_reports_lost(self):
        platform = mesh(1, 2)
        manager = Kairos(platform, validation_mode="skip")
        app = chain_app(2, cycles=80)
        layout = manager.allocate(app, "victim")
        # fail one of the two elements: no room to remap both tasks
        manager.state.fail_element(layout.placement["t0"])
        report = manager.recover({"victim": app})
        assert "victim" in report.lost
        assert manager.admitted == {}

    def test_unaffected_apps_untouched(self, mesh4x4):
        manager = Kairos(mesh4x4)
        a = manager.allocate(chain_app(2, cycles=20), "a")
        b = manager.allocate(chain_app(2, cycles=20), "b")
        used_by_b = set(b.placement.values()) | {
            node for r in b.routes.values() for node in r.path
        }
        spare = next(
            e.name for e in mesh4x4.elements
            if e.name not in used_by_b
            and e.name not in set(a.placement.values())
        )
        manager.state.fail_element(spare)
        assert manager.stranded_by_faults() == ()


class TestBootstrap:
    def test_plan_covers_layout(self, mesh3x3):
        manager = Kairos(mesh3x3)
        app = diamond_app()
        layout = manager.allocate(app)
        plan = generate_plan(app, layout)
        loads = plan.loads()
        assert {l.task for l in loads} == set(app.tasks)
        assert {r.channel for r in plan.routes()} == set(layout.routes)
        assert {s.task for s in plan.starts()} == set(app.tasks)

    def test_replaying_plan_reconstructs_layout(self, mesh3x3):
        """The plan is a faithful encoding: replaying it yields exactly
        the layout's placement and routes."""
        manager = Kairos(mesh3x3)
        app = diamond_app()
        layout = manager.allocate(app)
        plan = generate_plan(app, layout)
        rebuilt_placement = {l.task: l.element for l in plan.loads()}
        assert rebuilt_placement == layout.placement
        rebuilt_routes = {r.channel: r.path for r in plan.routes()}
        assert rebuilt_routes == {
            name: route.path for name, route in layout.routes.items()
        }

    def test_consumers_start_before_producers(self, mesh3x3):
        manager = Kairos(mesh3x3)
        app = chain_app(3)
        layout = manager.allocate(app)
        plan = generate_plan(app, layout)
        order = [s.task for s in plan.starts()]
        assert order.index("t2") < order.index("t1") < order.index("t0")

    def test_script_render(self, mesh3x3):
        manager = Kairos(mesh3x3)
        app = chain_app(2)
        layout = manager.allocate(app)
        script = generate_plan(app, layout).as_script()
        assert "load" in script and "start" in script


class TestMetrics:
    def make_recorders(self):
        recorder = SequenceRecorder()
        layout_stub = None
        # synthesise records directly (unit-level)
        from repro.manager.metrics import AttemptRecord
        recorder.records = [
            AttemptRecord(1, "a", True, None, 2.0, 10.0,
                          {"binding": 1.0, "mapping": 2.0,
                           "routing": 0.5, "validation": 3.0}, 4),
            AttemptRecord(2, "b", False, Phase.ROUTING, None, 12.0, {}, 5),
        ]
        other = SequenceRecorder()
        other.records = [
            AttemptRecord(1, "a", False, Phase.BINDING, None, 3.0, {}, 4),
            AttemptRecord(2, "b", True, None, 4.0, 8.0,
                          {"binding": 2.0, "mapping": 1.0,
                           "routing": 0.5, "validation": 1.0}, 4),
        ]
        return [recorder, other]

    def test_summarize_positions(self):
        summaries = summarize_positions(self.make_recorders(), 2)
        assert summaries[0].attempts == 2
        assert summaries[0].successes == 1
        assert summaries[0].success_rate == 50.0
        assert summaries[0].mean_hops == 2.0
        assert summaries[1].mean_hops == 4.0

    def test_failure_distribution(self):
        distribution = failure_distribution(self.make_recorders())
        assert distribution[Phase.ROUTING] == 50.0
        assert distribution[Phase.BINDING] == 50.0
        assert distribution[Phase.MAPPING] == 0.0

    def test_failure_distribution_empty(self):
        assert failure_distribution([])[Phase.BINDING] == 0.0

    def test_timings_by_task_count(self):
        buckets = timings_by_task_count(self.make_recorders())
        assert set(buckets) == {4}
        assert buckets[4]["binding"] == pytest.approx(1.5)
        assert buckets[4]["validation"] == pytest.approx(2.0)
