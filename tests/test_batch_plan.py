"""Batched queue drains: ``plan_batch`` wired into the sim service.

``AdmissionService.try_admit_batch`` probes a queue-front window
through the façade's ``plan_batch`` and commits the admissible prefix
inside one planning transaction.  Its contract is *decision
equivalence*: identical decisions, metrics and trace records to the
classic one-probe-per-request drain — the only difference is pipeline
mechanics (scratch pools and the demand cache stay warm across the
window).  These tests pin that equivalence across seeds, load levels
and fault campaigns, plus the recipe/CLI plumbing around it.
"""

from __future__ import annotations

import pytest

from repro.sim import build_recipe, replay_trace, run_recipe
from repro.sim.trace import trace_digest

#: a queue-heavy workload (overload on a small mesh): the drain path
#: is exercised constantly, so any batch/sequential divergence shows
BASE = dict(
    platform="6x6", duration=30.0, policy="fifo",
    rate_scale=4.0, pool_size=6, sample_interval=5.0,
)


def digests(**overrides) -> tuple[str, str]:
    params = {**BASE, **overrides}
    sequential = run_recipe(build_recipe(**params))
    batched = run_recipe(build_recipe(**params, batch_plan=4))
    return trace_digest(sequential.trace), trace_digest(batched.trace)


class TestDecisionEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 11])
    def test_batched_trace_is_identical_under_overload(self, seed):
        sequential, batched = digests(seed=seed)
        assert sequential == batched

    def test_batched_trace_is_identical_under_faults(self):
        # faults force requeue drains and epoch churn mid-window —
        # the short-circuit and replan paths must stay equivalent
        sequential, batched = digests(
            seed=3, faults=2, fault_mttr=5.0, resilience={},
        )
        assert sequential == batched

    def test_batched_trace_is_identical_for_priority_policy(self):
        # priority drains re-sort between admissions; the policy opts
        # out of batching (no _drain_batched), equivalence still holds
        sequential, batched = digests(seed=5, policy="priority")
        assert sequential == batched

    def test_window_size_does_not_change_decisions(self):
        recipe2 = build_recipe(**BASE, seed=9, batch_plan=2)
        recipe8 = build_recipe(**BASE, seed=9, batch_plan=8)
        assert trace_digest(run_recipe(recipe2).trace) == (
            trace_digest(run_recipe(recipe8).trace)
        )


class TestPlumbing:
    def test_recipe_key_emitted_only_when_batched(self):
        assert "batch_plan" not in build_recipe(**BASE)
        assert build_recipe(**BASE, batch_plan=4)["batch_plan"] == 4
        with pytest.raises(ValueError):
            build_recipe(**BASE, batch_plan=0)

    def test_service_rejects_a_zero_window(self):
        from repro.arch import mesh
        from repro.manager import Kairos
        from repro.sim.events import EventKernel
        from repro.sim.service import AdmissionService, FifoPolicy

        with pytest.raises(ValueError):
            AdmissionService(
                Kairos(mesh(2, 2), validation_mode="skip"),
                FifoPolicy(), EventKernel(seed=0), batch_plan=0,
            )

    def test_batched_recording_replays_bit_identically(self, tmp_path):
        path = tmp_path / "batched.jsonl"
        recipe = build_recipe(**BASE, seed=2, batch_plan=4)
        run_recipe(recipe, trace_path=path)
        identical, differences, _ = replay_trace(path)
        assert identical, differences[:5]

    def test_cli_accepts_batch_plan(self, capsys):
        from repro.cli import main

        assert main([
            "sim", "--platform", "6x6", "--duration", "10",
            "--rate-scale", "2.0", "--batch-plan", "4",
        ]) == 0
        assert "admitted" in capsys.readouterr().out
