"""Tests for the regret-ordered binding phase."""

from __future__ import annotations

import pytest

from repro.apps import Application, Implementation, Task
from repro.arch import (
    AllocationState,
    ElementType,
    ResourceVector,
    mesh,
)
from repro.binding import SINGLE_OPTION_REGRET, BindingError, bind
from tests.conftest import chain_app, simple_dsp_task


def impl(name, cost, cycles=20, kind=ElementType.DSP):
    return Implementation(
        name=name,
        requirement=ResourceVector(cycles=cycles),
        execution_time=1.0,
        cost=cost,
        target_kind=kind,
    )


class TestChoice:
    def test_cheapest_implementation_chosen(self, state3x3):
        app = Application("choice")
        app.add_task(Task("t", (impl("pricy", 9.0), impl("cheap", 1.0))))
        result = bind(app, state3x3)
        assert result["t"].name == "cheap"

    def test_infeasible_implementation_skipped(self, state3x3):
        app = Application("skip")
        app.add_task(Task("t", (
            impl("cheap_but_huge", 1.0, cycles=1000),
            impl("fits", 5.0),
        )))
        result = bind(app, state3x3)
        assert result["t"].name == "fits"

    def test_no_feasible_implementation_fails(self, state3x3):
        app = Application("doomed")
        app.add_task(Task("t", (impl("huge", 1.0, cycles=1000),)))
        with pytest.raises(BindingError) as info:
            bind(app, state3x3)
        assert "t" in str(info.value)

    def test_all_tasks_bound(self, state3x3, chain4):
        result = bind(chain4, state3x3)
        assert set(result.choice) == set(chain4.tasks)

    def test_quality_weight_trades_cost_for_speed(self, state3x3):
        app = Application("speedy")
        fast = Implementation(
            name="fast", requirement=ResourceVector(cycles=20),
            execution_time=1.0, cost=3.0, target_kind=ElementType.DSP,
        )
        slow = Implementation(
            name="slow", requirement=ResourceVector(cycles=20),
            execution_time=10.0, cost=1.0, target_kind=ElementType.DSP,
        )
        app.add_task(Task("t", (fast, slow)))
        assert bind(app, state3x3)["t"].name == "slow"
        assert bind(app, state3x3, quality_weight=1.0)["t"].name == "fast"


class TestRegretOrder:
    def test_single_option_tasks_bound_first(self, state3x3):
        app = Application("regret")
        app.add_task(Task("flexible", (impl("f1", 1.0), impl("f2", 1.1))))
        app.add_task(Task("rigid", (impl("only", 2.0),)))
        app.connect("flexible", "rigid")
        result = bind(app, state3x3)
        order = [task for task, _regret in result.order]
        assert order[0] == "rigid"
        assert result.order[0][1] == SINGLE_OPTION_REGRET

    def test_high_regret_before_low_regret(self, state3x3):
        app = Application("order")
        # high regret: cheap option much better than runner-up
        app.add_task(Task("high", (impl("h1", 1.0), impl("h2", 9.0))))
        # low regret: nearly equal options
        app.add_task(Task("low", (impl("l1", 1.0), impl("l2", 1.2))))
        app.connect("high", "low")
        result = bind(app, state3x3)
        order = [task for task, _regret in result.order]
        assert order.index("high") < order.index("low")

    def test_regret_values_recorded(self, state3x3):
        app = Application("values")
        app.add_task(Task("t", (impl("a", 1.0), impl("b", 4.0))))
        result = bind(app, state3x3)
        assert result.order[0][1] == pytest.approx(3.0)


class TestPoolAccounting:
    def test_pool_prevents_overcommitment(self):
        """Two 60-cycle tasks cannot both be provisioned on one
        100-cycle element."""
        state = AllocationState(mesh(1, 1))
        app = Application("pool")
        app.add_task(Task("a", (impl("a1", 1.0, cycles=60),)))
        app.add_task(Task("b", (impl("b1", 1.0, cycles=60),)))
        app.connect("a", "b")
        with pytest.raises(BindingError):
            bind(app, state)

    def test_pool_respects_existing_occupancy(self, state3x3):
        for element in state3x3.platform.elements:
            state3x3.occupy(element, "old", f"t_{element.name}",
                            ResourceVector(cycles=70))
        app = Application("tight")
        app.add_task(Task("t", (impl("i", 1.0, cycles=60),)))
        with pytest.raises(BindingError):
            bind(app, state3x3)

    def test_pool_excludes_failed_elements(self):
        state = AllocationState(mesh(1, 2))
        state.fail_element("dsp_0_0")
        app = Application("faulty")
        app.add_task(Task("a", (impl("a1", 1.0, cycles=60),)))
        app.add_task(Task("b", (impl("b1", 1.0, cycles=60),)))
        app.connect("a", "b")
        # only one healthy element remains; 2 x 60 > 100
        with pytest.raises(BindingError):
            bind(app, state)

    def test_provisional_witnesses_recorded(self, state3x3, chain4):
        result = bind(chain4, state3x3)
        for task in chain4.tasks:
            assert result.provisional[task] in {
                e.name for e in state3x3.platform.elements
            }

    def test_binding_does_not_mutate_state(self, state3x3, chain4):
        before = state3x3.snapshot()
        bind(chain4, state3x3)
        assert state3x3.snapshot() == before

    def test_total_cost(self, state3x3):
        app = Application("sum")
        app.add_task(Task("a", (impl("a1", 2.0),)))
        app.add_task(Task("b", (impl("b1", 3.0),)))
        app.connect("a", "b")
        assert bind(app, state3x3).total_cost() == pytest.approx(5.0)

    def test_deterministic(self, state3x3, chain4):
        first = bind(chain4, state3x3)
        second = bind(chain4, state3x3)
        assert {t: i.name for t, i in first.choice.items()} == {
            t: i.name for t, i in second.choice.items()
        }
