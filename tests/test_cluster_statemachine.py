"""Stateful property test: random cluster interleavings hold invariants.

A Hypothesis ``RuleBasedStateMachine`` drives a 2-shard cluster
through arbitrary interleavings of admissions, releases, plan/commit
rounds, shard kills, revivals, fault reports and heartbeat pulses —
the concurrency schedule a real deployment would produce, minus the
threads.  After **every** rule the machine re-checks the cross-shard
invariants:

* ``verify_integrity()`` stays empty — no interleaving of 2PC rounds,
  kills and releases ever leaks an orphan part or double-books one;
* the routable set is always a subset of the registered shards, and
  dead/probation shards never appear in it;
* utilization stays within [0, 1] on every shard;
* bookkeeping and residency agree up to legitimate strandedness
  (a booked part is either resident or its shard has been killed).

Teardown releases everything and asserts the cluster drains to zero —
whatever the interleaving did, no allocation survives its owner.

Example budgets come from the tiered profiles in ``conftest.py``
(``HYPOTHESIS_PROFILE=determinism`` sweeps ~500 schedules).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.cluster import ClusterManager, build_shards
from repro.cluster.registry import ROUTABLE_STATES
from tests.conftest import chain_app


class ClusterMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = ClusterManager(build_shards(2, 4, 2))
        self.now = 0.0
        self.next_id = 0
        self.live_books: set[str] = set()

    # -- helpers -------------------------------------------------------------

    def _shard(self, index: int):
        return self.cluster.shards[index % len(self.cluster.shards)]

    def _fresh_id(self, prefix: str) -> str:
        self.next_id += 1
        return f"{prefix}{self.next_id}"

    # -- rules ---------------------------------------------------------------

    @rule(size=st.integers(min_value=1, max_value=3))
    def admit(self, size):
        app_id = self._fresh_id("app")
        decision = self.cluster.admit(chain_app(size), app_id)
        if decision.admitted:
            self.live_books.add(app_id)
        else:
            assert app_id not in self.cluster.admitted

    @precondition(lambda self: self.live_books)
    @rule(pick=st.integers(min_value=0))
    def release(self, pick):
        app_id = sorted(self.live_books)[pick % len(self.live_books)]
        self.live_books.discard(app_id)
        self.cluster.release(app_id)
        assert app_id not in self.cluster.admitted

    @rule(index=st.integers(min_value=0, max_value=1))
    def plan_probe_holds_nothing(self, index):
        shard = self._shard(index)
        if not shard.alive:
            assert shard.plan(chain_app(1), self._fresh_id("probe")) is None
            return
        before = shard.utilization()
        shard.plan(chain_app(1), self._fresh_id("probe"))
        assert shard.utilization() == before

    @rule(index=st.integers(min_value=0, max_value=1))
    def plan_commit_release_round_trips(self, index):
        shard = self._shard(index)
        if not shard.alive:
            return
        part_id = self._fresh_id("direct")
        before = shard.utilization()
        plan = shard.plan(chain_app(1), part_id)
        if plan is None or not plan.ok:
            return
        decision = shard.commit(plan)
        if decision.admitted:
            assert shard.release(part_id)
        assert shard.utilization() == before

    @rule(index=st.integers(min_value=0, max_value=1))
    def kill(self, index):
        shard = self._shard(index)
        if shard.alive:
            shard.kill()
            assert shard.manager.admitted == {}

    @rule(index=st.integers(min_value=0, max_value=1))
    def revive(self, index):
        shard = self._shard(index)
        if not shard.alive:
            shard.revive()

    @rule(index=st.integers(min_value=0, max_value=1))
    def note_fault(self, index):
        self.cluster.liveness.note_fault(
            self._shard(index).shard_id, self.now
        )

    @rule(step=st.floats(min_value=0.5, max_value=4.0))
    def pulse(self, step):
        self.now += step
        for shard in self.cluster.shards:
            if shard.alive:
                shard.beat()
                self.cluster.liveness.heartbeat(shard.shard_id, self.now)
        self.cluster.liveness.observe(self.now)

    @precondition(lambda self: self.live_books)
    @rule()
    def recover_stranded(self):
        stranded = self.cluster.stranded_by_faults()
        outcome = self.cluster.controller.recovery_engine().recovery_pass(
            now=self.now
        )
        assert tuple(outcome.stranded) == stranded
        # a recovery pass resolves every stranded app one way or the
        # other: re-placed, lost, or parked in the requeue (in which
        # case its bookkeeping is gone until re-admission)
        for app_id in stranded:
            if app_id not in self.cluster.admitted:
                self.live_books.discard(app_id)
        assert self.cluster.stranded_by_faults() == ()

    # -- invariants ----------------------------------------------------------

    @invariant()
    def integrity_holds(self):
        assert self.cluster.verify_integrity() == []

    @invariant()
    def routable_set_is_consistent(self):
        liveness = self.cluster.liveness
        routable = liveness.routable_ids()
        assert set(routable) <= set(liveness.shard_ids)
        for shard_id in liveness.shard_ids:
            assert (shard_id in routable) == (
                liveness.state(shard_id) in ROUTABLE_STATES
            )

    @invariant()
    def utilization_bounded(self):
        for shard in self.cluster.shards:
            assert 0.0 <= shard.utilization() <= 1.0
        assert 0.0 <= self.cluster.utilization() <= 1.0

    @invariant()
    def books_match_residency_up_to_kills(self):
        for app_id, parts in self.cluster.admitted.items():
            for shard_id, part_id in parts:
                shard = self.cluster.by_id[shard_id]
                resident = part_id in shard.manager.admitted
                # not resident is legal only as kill strandedness:
                # the books survive, the allocation does not
                if not resident:
                    assert app_id in self.cluster.stranded_by_faults()

    def teardown(self):
        self.cluster.release_all()
        assert self.cluster.admitted == {}
        assert self.cluster.utilization() == 0.0
        assert self.cluster.verify_integrity() == []


TestClusterMachine = ClusterMachine.TestCase
TestClusterMachine.settings = settings(deadline=None, stateful_step_count=30)
