"""Tests for the Kairos binary application format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    GeneratorConfig,
    LatencyConstraint,
    ThroughputConstraint,
    beamforming_application,
    generate,
)
from repro.io import (
    MAGIC,
    BinaryFormatError,
    load_application,
    pack_application,
    save_application,
    sniff,
    unpack_application,
)
from tests.conftest import chain_app, diamond_app


def same_application(a, b) -> None:
    assert a.name == b.name
    assert set(a.tasks) == set(b.tasks)
    for name in a.tasks:
        task_a, task_b = a.task(name), b.task(name)
        assert task_a.role == task_b.role
        assert len(task_a.implementations) == len(task_b.implementations)
        for impl_a, impl_b in zip(task_a.implementations,
                                  task_b.implementations):
            assert impl_a == impl_b
    assert set(a.channels) == set(b.channels)
    for name in a.channels:
        assert a.channel(name) == b.channel(name)
    assert a.constraints == b.constraints


class TestRoundTrip:
    def test_chain(self):
        app = chain_app(4)
        same_application(app, unpack_application(pack_application(app)))

    def test_diamond_with_constraints(self):
        app = diamond_app()
        app.add_constraint(ThroughputConstraint(0.5, "d"))
        app.add_constraint(LatencyConstraint(9.0, ("a", "b", "d")))
        same_application(app, unpack_application(pack_application(app)))

    def test_beamformer(self):
        app = beamforming_application()
        restored = unpack_application(pack_application(app))
        same_application(app, restored)
        restored.validate()

    def test_pinned_implementations_survive(self):
        app = beamforming_application()
        restored = unpack_application(pack_application(app))
        assert restored.task("ant0").implementations[0].target_element == "fpga"

    def test_file_helpers(self, tmp_path):
        app = chain_app(3)
        path = tmp_path / "app.kair"
        save_application(app, path)
        same_application(app, load_application(path))

    def test_output_is_stable(self):
        app = diamond_app()
        assert pack_application(app) == pack_application(app)


# profile-governed (see conftest.py): HYPOTHESIS_PROFILE=determinism
# runs ~500 examples of this bit-identity round-trip
@settings(deadline=None)
@given(
    seed=st.integers(0, 1000),
    internals=st.integers(0, 6),
)
def test_roundtrip_property(seed, internals):
    app = generate(
        GeneratorConfig(inputs=1, internals=internals, outputs=1),
        seed=seed,
    )
    same_application(app, unpack_application(pack_application(app)))


class TestErrors:
    def test_sniff(self):
        assert sniff(pack_application(chain_app(2)))
        assert not sniff(b"\x7fELF....")
        assert not sniff(b"KA")

    def test_bad_magic(self):
        data = bytearray(pack_application(chain_app(2)))
        data[:4] = b"ELFX"
        with pytest.raises(BinaryFormatError, match="magic"):
            unpack_application(bytes(data))

    def test_bad_version(self):
        data = bytearray(pack_application(chain_app(2)))
        data[4] = 99
        with pytest.raises(BinaryFormatError, match="version"):
            unpack_application(bytes(data))

    def test_truncation_every_prefix_fails_cleanly(self):
        """No prefix of a valid binary may crash with anything but
        BinaryFormatError (or produce a valid application)."""
        data = pack_application(chain_app(3))
        for cut in range(0, len(data) - 1, 7):
            try:
                unpack_application(data[:cut])
            except BinaryFormatError:
                continue
            except Exception as exc:  # pragma: no cover
                pytest.fail(f"prefix {cut}: unexpected {type(exc).__name__}")

    def test_too_short(self):
        with pytest.raises(BinaryFormatError):
            unpack_application(b"KAIR")


class TestInitialTokens:
    def test_feedback_channel_roundtrip(self):
        from repro.apps import Application, Channel
        from tests.conftest import simple_dsp_task
        app = Application("loop")
        app.add_task(simple_dsp_task("a"))
        app.add_task(simple_dsp_task("b"))
        app.add_channel(Channel("fwd", "a", "b"))
        app.add_channel(Channel("back", "b", "a", initial_tokens=3))
        restored = unpack_application(pack_application(app))
        assert restored.channel("back").initial_tokens == 3
        assert restored.channel("fwd").initial_tokens == 0
