"""Tests for the discrete-event kernel and the traffic models."""

from __future__ import annotations

import random

import pytest

from repro.sim import (
    EventKernel,
    EventKind,
    ExponentialHolding,
    LognormalHolding,
    MMPPProcess,
    PoissonProcess,
    default_traffic_classes,
    pop_random,
    traffic_pool,
)


class TestEventKernel:
    def test_fires_in_time_order(self):
        kernel = EventKernel()
        fired = []
        for when in (3.0, 1.0, 2.0):
            kernel.schedule_at(
                when, EventKind.ARRIVAL,
                lambda k, e: fired.append(k.now),
            )
        assert kernel.run() == 3
        assert fired == [1.0, 2.0, 3.0]
        assert kernel.processed == 3

    def test_equal_time_ties_break_by_kind_then_seq(self):
        kernel = EventKernel()
        fired = []

        def log(tag):
            return lambda k, e: fired.append(tag)

        kernel.schedule_at(5.0, EventKind.TICK, log("tick"))
        kernel.schedule_at(5.0, EventKind.ARRIVAL, log("arrival_a"))
        kernel.schedule_at(5.0, EventKind.DEPARTURE, log("departure"))
        kernel.schedule_at(5.0, EventKind.ARRIVAL, log("arrival_b"))
        kernel.schedule_at(5.0, EventKind.FAULT, log("fault"))
        kernel.run()
        assert fired == [
            "departure", "fault", "arrival_a", "arrival_b", "tick",
        ]

    def test_until_is_inclusive_and_advances_now(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule_at(2.0, EventKind.TICK, lambda k, e: fired.append(2))
        kernel.schedule_at(5.0, EventKind.TICK, lambda k, e: fired.append(5))
        kernel.schedule_at(7.0, EventKind.TICK, lambda k, e: fired.append(7))
        kernel.run(until=5.0)
        assert fired == [2, 5]
        assert kernel.now == 5.0
        kernel.run(until=6.0)  # drained window still advances the clock
        assert kernel.now == 6.0

    def test_cancelled_events_are_skipped(self):
        kernel = EventKernel()
        fired = []
        event = kernel.schedule_at(
            1.0, EventKind.ARRIVAL, lambda k, e: fired.append("a")
        )
        kernel.schedule_at(2.0, EventKind.ARRIVAL, lambda k, e: fired.append("b"))
        event.cancel()
        assert kernel.pending() == 1
        kernel.run()
        assert fired == ["b"]

    def test_handlers_can_schedule_more_events(self):
        kernel = EventKernel()
        fired = []

        def chain(kernel, event):
            fired.append(kernel.now)
            if kernel.now < 3.0:
                kernel.schedule(1.0, EventKind.ARRIVAL, chain)

        kernel.schedule_at(0.0, EventKind.ARRIVAL, chain)
        kernel.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_stop_halts_the_loop(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule_at(
            1.0, EventKind.ARRIVAL,
            lambda k, e: (fired.append(1), k.stop()),
        )
        kernel.schedule_at(2.0, EventKind.ARRIVAL, lambda k, e: fired.append(2))
        kernel.run()
        assert fired == [1]
        assert kernel.peek_time() == 2.0

    def test_scheduling_into_the_past_rejected(self):
        kernel = EventKernel()
        kernel.schedule_at(1.0, EventKind.TICK, lambda k, e: None)
        kernel.run()
        with pytest.raises(ValueError):
            kernel.schedule_at(0.5, EventKind.TICK, lambda k, e: None)

    def test_max_events_bounds_one_call(self):
        kernel = EventKernel()
        for when in range(5):
            kernel.schedule_at(float(when), EventKind.TICK, lambda k, e: None)
        assert kernel.run(max_events=2) == 2
        assert kernel.run() == 3

    def test_max_events_halt_does_not_jump_the_clock(self):
        """Halting on the cap must leave `now` at the last fired event,
        or pending events would later run time backwards."""
        kernel = EventKernel()
        kernel.schedule_at(1.0, EventKind.TICK, lambda k, e: None)
        kernel.schedule_at(2.0, EventKind.TICK, lambda k, e: None)
        kernel.run(until=10.0, max_events=1)
        assert kernel.now == 1.0
        kernel.schedule_at(3.0, EventKind.TICK, lambda k, e: None)  # legal
        kernel.run(until=10.0)
        assert kernel.now == 10.0
        assert kernel.processed == 3


class TestPopRandom:
    def test_matches_pop_randrange_reference(self):
        """The helper must preserve the exact draw semantics the churn
        digests were frozen with: pop(randrange(len)), order kept."""
        ours, theirs = list("abcdefgh"), list("abcdefgh")
        rng_a, rng_b = random.Random(42), random.Random(42)
        while ours:
            assert pop_random(rng_a, ours) == theirs.pop(
                rng_b.randrange(len(theirs))
            )
            assert ours == theirs

    def test_raises_on_empty(self):
        with pytest.raises(ValueError):
            pop_random(random.Random(0), [])


class TestArrivalProcesses:
    def test_poisson_mean_interarrival(self):
        process = PoissonProcess(rate=4.0)
        rng = random.Random(1)
        draws = [process.next_interarrival(rng) for _ in range(4000)]
        assert all(gap > 0 for gap in draws)
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(0.25, rel=0.1)
        assert process.mean_rate() == 4.0

    def test_poisson_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonProcess(0.0)

    def test_mmpp_mean_rate_is_dwell_weighted(self):
        process = MMPPProcess(((2.0, 10.0), (0.0, 30.0)))
        assert process.mean_rate() == pytest.approx(0.5)

    def test_mmpp_long_run_rate(self):
        process = MMPPProcess(((3.0, 5.0), (0.2, 5.0)))
        rng = random.Random(7)
        total = sum(process.next_interarrival(rng) for _ in range(4000))
        observed_rate = 4000 / total
        assert observed_rate == pytest.approx(process.mean_rate(), rel=0.15)

    def test_mmpp_silent_phase_advances(self):
        process = MMPPProcess(((1.0, 1.0), (0.0, 1.0)))
        rng = random.Random(3)
        for _ in range(50):
            assert process.next_interarrival(rng) > 0

    def test_mmpp_validation(self):
        with pytest.raises(ValueError):
            MMPPProcess(())
        with pytest.raises(ValueError):
            MMPPProcess(((0.0, 1.0),))
        with pytest.raises(ValueError):
            MMPPProcess(((1.0, 0.0),))


class TestHoldingTimes:
    def test_exponential_mean(self):
        holding = ExponentialHolding(mean=8.0)
        rng = random.Random(2)
        draws = [holding.sample(rng) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(8.0, rel=0.1)

    def test_lognormal_median_and_mean(self):
        holding = LognormalHolding(median=10.0, sigma=0.5)
        rng = random.Random(3)
        draws = sorted(holding.sample(rng) for _ in range(4001))
        assert draws[2000] == pytest.approx(10.0, rel=0.15)
        assert holding.mean > 10.0  # lognormal mean exceeds the median

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialHolding(0.0)
        with pytest.raises(ValueError):
            LognormalHolding(median=-1.0)


class TestTrafficClasses:
    def test_pool_is_deterministic(self):
        first = traffic_pool(4, seed=9)
        second = traffic_pool(4, seed=9)
        assert [app.name for app in first] == [app.name for app in second]
        assert len(first) == 4

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            traffic_pool(0, seed=0)
        with pytest.raises(ValueError):
            traffic_pool(3, seed=0, internals_low=5, internals_high=2)

    def test_default_classes_shape(self):
        classes = default_traffic_classes(seed=1, rate_scale=2.0, pool_size=3)
        names = [cls.name for cls in classes]
        assert names == ["interactive", "batch", "bursty"]
        assert all(len(cls.pool) == 3 for cls in classes)
        priorities = {cls.name: cls.priority for cls in classes}
        assert priorities["interactive"] > priorities["batch"]
        for cls in classes:
            assert cls.offered_load() > 0

    def test_rate_scale_scales_load(self):
        slow = default_traffic_classes(rate_scale=1.0)
        fast = default_traffic_classes(rate_scale=3.0)
        for a, b in zip(slow, fast):
            assert b.offered_load() == pytest.approx(3 * a.offered_load())

    def test_rate_scale_validation(self):
        with pytest.raises(ValueError):
            default_traffic_classes(rate_scale=0.0)
