"""Admission-churn acceptance tests: speedup, determinism, rollback cost.

These assert the perf claims of the transactional/interned admission
pipeline against the frozen seed reference (``benchmarks/seed_reference``,
a verbatim copy of the repository's original implementation):

* the 12x12-mesh churn workload runs >= 3x faster than the seed
  snapshot/restore implementation,
* placements and routes are bit-identical across the seed reference,
  the legacy snapshot rollback strategy, and the transaction journal,
* failed-attempt rollback cost no longer scales with platform size
  (16x16 within ~2x of 4x4), while a full snapshot/restore cycle
  demonstrably does.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.arch import AllocationState, mesh
from repro.experiments import (
    CHURN_BENCH_CONFIG as CONFIG,
    CHURN_BENCH_POOL_SIZE,
    churn_pool,
    measure_mesh_rollback_seconds,
    run_admission_churn,
)

from benchmarks.seed_reference.kairos import run_seed_churn

POOL = churn_pool(count=CHURN_BENCH_POOL_SIZE, seed=0)

#: acceptance thresholds (measured ~4.8x and ~1.1x on an idle machine;
#: generous slack absorbs CI noise without weakening the claims)
MIN_SPEEDUP = 3.0
MAX_ROLLBACK_RATIO = 2.0


@pytest.fixture(scope="module")
def churn_runs():
    """One timed run of each implementation over the same workload."""
    seed = min(
        (run_seed_churn(POOL, mesh(12, 12), CONFIG) for _ in range(2)),
        key=lambda r: r.elapsed_seconds,
    )
    transaction = min(
        (
            run_admission_churn(
                POOL, mesh(12, 12), CONFIG, rollback="transaction"
            )
            for _ in range(2)
        ),
        key=lambda r: r.elapsed_seconds,
    )
    snapshot = run_admission_churn(
        POOL, mesh(12, 12), CONFIG, rollback="snapshot"
    )
    return seed, transaction, snapshot


class TestChurnEquivalence:
    def test_workload_exercises_fill_and_churn(self, churn_runs):
        _seed, transaction, _snapshot = churn_runs
        assert transaction.fill_admitted > 10
        assert transaction.released >= CONFIG.steps - 1
        assert transaction.admitted > transaction.fill_admitted
        assert transaction.final_utilization > 0.5

    def test_rollback_strategies_produce_identical_layouts(self, churn_runs):
        _seed, transaction, snapshot = churn_runs
        assert transaction.layouts == snapshot.layouts
        assert transaction.admitted == snapshot.admitted
        assert transaction.rejected == snapshot.rejected

    def test_matches_seed_implementation_layouts(self, churn_runs):
        seed, transaction, _snapshot = churn_runs
        assert transaction.layouts == seed.layouts
        assert transaction.admitted == seed.admitted
        assert transaction.rejected == seed.rejected


@pytest.mark.perf
class TestChurnSpeedup:
    def test_at_least_3x_faster_than_seed(self, churn_runs):
        seed, transaction, _snapshot = churn_runs
        speedup = seed.elapsed_seconds / transaction.elapsed_seconds
        assert speedup >= MIN_SPEEDUP, (
            f"churn speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor "
            f"(seed {seed.elapsed_seconds:.3f}s, "
            f"transaction {transaction.elapsed_seconds:.3f}s)"
        )


@pytest.mark.perf
class TestRollbackScaling:
    def test_rollback_cost_flat_in_platform_size(self):
        """The same failed attempt must cost the same to undo on a
        16x16 mesh as on a 4x4 mesh — rollback is O(mutations).
        Measured by the same shared helper the benchmark runner
        reports, so the CI gate and BENCH_admission.json track one
        scenario."""
        small = measure_mesh_rollback_seconds(4)
        large = measure_mesh_rollback_seconds(16)
        ratio = large / small
        assert ratio <= MAX_ROLLBACK_RATIO, (
            f"rollback on 16x16 costs {ratio:.2f}x a 4x4 rollback "
            f"({large * 1e6:.1f}us vs {small * 1e6:.1f}us)"
        )

    def test_snapshot_cost_grows_with_platform_size(self):
        """Contrast: the legacy full-copy rollback is O(platform)."""

        def snapshot_restore(rows: int, repeats: int = 100) -> float:
            state = AllocationState(mesh(rows, rows))
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                state.restore(state.snapshot())
                best = min(best, time.perf_counter() - started)
            return best

        assert snapshot_restore(16) > 3.0 * snapshot_restore(4)
