"""Tests for the platform ring search and the GAP solver."""

from __future__ import annotations

import pytest

from repro.arch import AllocationState, ResourceVector, mesh
from repro.core.gap import GapSolver, UNMAPPED_COST
from repro.core.search import RingSearch, SparseDistanceMatrix


class TestSparseDistanceMatrix:
    def test_symmetric(self):
        matrix = SparseDistanceMatrix()
        matrix.record("a", "b", 3)
        assert matrix.get("a", "b") == 3
        assert matrix.get("b", "a") == 3

    def test_identity_distance_zero(self):
        assert SparseDistanceMatrix().get("x", "x") == 0

    def test_missing_is_none(self):
        assert SparseDistanceMatrix().get("a", "b") is None

    def test_minimum_wins(self):
        matrix = SparseDistanceMatrix()
        matrix.record("a", "b", 5)
        matrix.record("b", "a", 2)
        assert matrix.get("a", "b") == 2
        matrix.record("a", "b", 9)
        assert matrix.get("a", "b") == 2

    def test_merge(self):
        left = SparseDistanceMatrix()
        right = SparseDistanceMatrix()
        left.record("a", "b", 4)
        right.record("a", "b", 2)
        right.record("c", "d", 7)
        left.merge(right)
        assert left.get("a", "b") == 2
        assert left.get("c", "d") == 7


class TestRingSearch:
    def test_rings_match_bfs_distance(self, state3x3):
        search = RingSearch(state3x3, ["dsp_0_0"])
        platform = state3x3.platform
        found = {}
        ring = 0
        while not search.exhausted:
            ring += 1
            for element in search.advance():
                found[element.name] = ring
        for name, ring in found.items():
            assert ring == platform.hop_distance("dsp_0_0", name)

    def test_distance_matrix_against_platform(self, state3x3):
        search = RingSearch(state3x3, ["dsp_0_0", "dsp_2_2"])
        while not search.exhausted:
            search.advance()
        platform = state3x3.platform
        for origin in ("dsp_0_0", "dsp_2_2"):
            for element in platform.elements:
                recorded = search.distances.get(origin, element.name)
                assert recorded == platform.hop_distance(origin, element.name)

    def test_origins_deduplicated(self, state3x3):
        search = RingSearch(state3x3, ["dsp_0_0", "dsp_0_0"])
        assert search.origins == ("dsp_0_0",)

    def test_empty_origins_rejected(self, state3x3):
        with pytest.raises(ValueError):
            RingSearch(state3x3, [])

    def test_congestion_blocks_traversal(self, state3x3):
        # saturate both directions of the only exit of dsp_0_0's router
        # to wall off a corner region: links r_0_0--r_0_1 and r_0_0--r_1_0
        for a, b in (("r_0_0", "r_0_1"), ("r_0_0", "r_1_0")):
            for index in range(4):
                state3x3.reserve_route(
                    "x", f"c_{a}_{b}_{index}", [a, b], 1.0
                )
                state3x3.reserve_route(
                    "x", f"c_{b}_{a}_{index}", [b, a], 1.0
                )
        search = RingSearch(state3x3, ["dsp_0_0"], respect_congestion=True)
        names = set()
        while not search.exhausted:
            names.update(e.name for e in search.advance())
        assert names == set()  # walled in

        free_search = RingSearch(state3x3, ["dsp_0_0"], respect_congestion=False)
        names = set()
        while not free_search.exhausted:
            names.update(e.name for e in free_search.advance())
        assert len(names) == 8  # everything else

    def test_gather_extra_ring(self, state3x3):
        search = RingSearch(state3x3, ["dsp_1_1"])

        def always(element):
            return True

        found = search.gather(needed=1, availability=always, extra_rings=0)
        baseline_rings = search.ring
        search2 = RingSearch(state3x3, ["dsp_1_1"])
        found2 = search2.gather(needed=1, availability=always, extra_rings=1)
        assert search2.ring == baseline_rings + 1
        assert len(found2) >= len(found)

    def test_gather_respects_max_rings(self, state3x3):
        search = RingSearch(state3x3, ["dsp_0_0"])
        search.gather(needed=100, availability=lambda e: True, max_rings=2)
        assert search.ring <= 2


class _Element:
    """Helpers to build GAP scenarios on a 1x3 line platform."""


def line_state():
    platform = mesh(1, 3)
    return AllocationState(platform)


class TestGapSolver:
    def make_solver(self, state, tasks, costs, cycles=60):
        requirements = {t: ResourceVector(cycles=cycles) for t in tasks}

        def compatible(task, element):
            return True

        def pair_cost(task, element):
            return costs.get((task, element.name), 100.0)

        return GapSolver(tasks, requirements, compatible, pair_cost, state)

    def test_assigns_all_when_capacity_allows(self):
        state = line_state()
        costs = {}
        solver = self.make_solver(state, ["a", "b", "c"], costs, cycles=60)
        solver.solve(state.platform.elements)
        assert solver.complete
        # one 60-cycle task per 100-cycle element
        assert len(set(solver.element_of.values())) == 3

    def test_respects_capacity(self):
        state = line_state()
        solver = self.make_solver(state, ["a", "b", "c", "d"], {}, cycles=60)
        solver.solve(state.platform.elements)
        # 4 tasks x 60 cycles > 3 elements x 100 cycles
        assert not solver.complete
        assert len(solver.unmapped) == 1

    def test_prefers_cheaper_element(self):
        state = line_state()
        costs = {("a", "dsp_0_0"): 50.0, ("a", "dsp_0_1"): 1.0,
                 ("a", "dsp_0_2"): 50.0}
        solver = self.make_solver(state, ["a"], costs)
        solver.solve(state.platform.elements)
        assert solver.element_of["a"] == "dsp_0_1"
        assert solver.c1["a"] == 1.0

    def test_remaps_only_on_positive_reduction(self):
        state = line_state()
        costs = {("a", "dsp_0_0"): 5.0, ("a", "dsp_0_1"): 5.0,
                 ("a", "dsp_0_2"): 4.0}
        solver = self.make_solver(state, ["a"], costs)
        solver.solve([state.platform.element("dsp_0_0")])
        assert solver.element_of["a"] == "dsp_0_0"
        # equal cost: no remap
        solver.solve([state.platform.element("dsp_0_1")])
        assert solver.element_of["a"] == "dsp_0_0"
        # strictly cheaper: remap
        solver.solve([state.platform.element("dsp_0_2")])
        assert solver.element_of["a"] == "dsp_0_2"

    def test_incremental_solve_skips_seen_elements(self):
        state = line_state()
        solver = self.make_solver(state, ["a"], {})
        solver.solve(state.platform.elements)
        calls_before = solver.knapsack_calls
        solver.solve(state.platform.elements)  # all seen already
        assert solver.knapsack_calls == calls_before

    def test_unmapped_cost_dominates(self):
        state = line_state()
        solver = self.make_solver(state, ["a"], {("a", "dsp_0_0"): 1e9})
        solver.solve([state.platform.element("dsp_0_0")])
        # even a huge cost beats UNMAPPED_COST
        assert solver.element_of["a"] == "dsp_0_0"
        assert UNMAPPED_COST > 1e9

    def test_compatibility_filter(self):
        state = line_state()
        requirements = {"a": ResourceVector(cycles=10)}

        def compatible(task, element):
            return element.name == "dsp_0_2"

        solver = GapSolver(["a"], requirements, compatible,
                           lambda t, e: 1.0, state)
        solver.solve(state.platform.elements)
        assert solver.element_of["a"] == "dsp_0_2"

    def test_remap_frees_previous_element(self):
        state = line_state()
        # two tasks of 60 cycles; a cheaper element appears later for one
        costs = {
            ("a", "dsp_0_0"): 10.0, ("b", "dsp_0_0"): 10.0,
            ("a", "dsp_0_1"): 1.0, ("b", "dsp_0_1"): 20.0,
        }
        solver = self.make_solver(state, ["a", "b"], costs, cycles=60)
        solver.solve([state.platform.element("dsp_0_0")])
        # only one fits on dsp_0_0 (60+60 > 100)
        assert len(solver.element_of) == 1
        solver.solve([state.platform.element("dsp_0_1")])
        # 'a' moves (or lands) on dsp_0_1, freeing dsp_0_0 for 'b'...
        # but the single-pass structure of [15] does not revisit
        # dsp_0_0, so 'b' may stay unmapped until the caller grows the
        # element set — which MapApplication does.  Verify no element
        # is over-committed either way.
        loads = {}
        for task, element in solver.element_of.items():
            loads[element] = loads.get(element, 0) + 60
        assert all(load <= 100 for load in loads.values())

    def test_missing_requirement_rejected(self):
        state = line_state()
        with pytest.raises(ValueError):
            GapSolver(["a"], {}, lambda t, e: True, lambda t, e: 0.0, state)

    def test_assignment_snapshot(self):
        state = line_state()
        solver = self.make_solver(state, ["a"], {})
        assignment = solver.solve(state.platform.elements)
        assert assignment.element_of == solver.element_of
        assert assignment.mapped_tasks() == ("a",)


class TestFallbackInternedEquivalence:
    """Property: the name-keyed fallback store and the interned-row
    store answer ``get`` identically for the same recorded facts
    (satellite coverage for the fallback path, which real searches
    never exercise)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_records_agree(self, seed):
        import random

        rng = random.Random(seed)
        platform = mesh(rng.randint(2, 4), rng.randint(2, 5))
        names = [node.name for node in platform.nodes]
        interned = SparseDistanceMatrix(platform)
        fallback = SparseDistanceMatrix()  # no platform: name-keyed
        for _ in range(rng.randint(5, 60)):
            a, b = rng.choice(names), rng.choice(names)
            distance = rng.randint(0, 12)
            interned.record(a, b, distance)
            fallback.record(a, b, distance)
        for _ in range(200):
            a, b = rng.choice(names), rng.choice(names)
            assert interned.get(a, b) == fallback.get(a, b), (a, b)
        # (cell counts intentionally differ: interned rows keep the
        # directed cells, the fallback canonicalises symmetric pairs)

    @pytest.mark.parametrize("seed", range(3))
    def test_merge_between_modes_agrees(self, seed):
        import random

        rng = random.Random(100 + seed)
        platform = mesh(3, 3)
        names = [node.name for node in platform.nodes]
        facts = [
            (rng.choice(names), rng.choice(names), rng.randint(0, 9))
            for _ in range(30)
        ]
        # interned rows merged into a fallback matrix must agree with
        # a fallback matrix fed the same facts directly
        source = SparseDistanceMatrix(platform)
        direct = SparseDistanceMatrix()
        for a, b, distance in facts:
            source.record(a, b, distance)
            direct.record(a, b, distance)
        merged = SparseDistanceMatrix()
        merged.merge(source)
        for _ in range(200):
            a, b = rng.choice(names), rng.choice(names)
            assert merged.get(a, b) == direct.get(a, b), (a, b)

    def test_search_distances_agree_with_fallback_copy(self, state3x3):
        search = RingSearch(state3x3, ["dsp_0_0", "dsp_2_2"])
        while not search.exhausted:
            search.advance()
        names = [node.name for node in state3x3.platform.nodes]
        copy = SparseDistanceMatrix()  # rebuild through the name API
        node_ids = state3x3.platform._node_ids
        for origin in search.origins:
            for name in names:
                d = search.distances.get_ids(node_ids[origin], node_ids[name])
                if d is not None:
                    copy.record(origin, name, d)
        for origin in search.origins:
            for name in names:
                assert copy.get(origin, name) == search.distances.get(
                    origin, name
                )
