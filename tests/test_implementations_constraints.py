"""Unit tests for implementations and performance constraints."""

from __future__ import annotations

import pytest

from repro.apps import (
    Implementation,
    LatencyConstraint,
    ThroughputConstraint,
)
from repro.apps.constraints import ConstraintError, normalize
from repro.apps.implementations import (
    ImplementationError,
    dsp_implementation,
    pinned_implementation,
)
from repro.arch import ElementType, ProcessingElement, ResourceVector
from repro.arch.elements import default_capacity


def dsp_element(name: str = "d0") -> ProcessingElement:
    return ProcessingElement(name, ElementType.DSP, default_capacity(ElementType.DSP))


class TestImplementation:
    def test_exactly_one_target_required(self):
        with pytest.raises(ImplementationError):
            Implementation(name="x", requirement=ResourceVector())
        with pytest.raises(ImplementationError):
            Implementation(
                name="x",
                requirement=ResourceVector(),
                target_kind=ElementType.DSP,
                target_element="d0",
            )

    def test_positive_execution_time_required(self):
        with pytest.raises(ImplementationError):
            Implementation(
                name="x",
                requirement=ResourceVector(),
                target_kind=ElementType.DSP,
                execution_time=0,
            )

    def test_runs_on_matching_kind(self):
        impl = dsp_implementation("x", cycles=50)
        assert impl.runs_on(dsp_element())

    def test_runs_on_rejects_wrong_kind(self):
        impl = dsp_implementation("x", cycles=10)
        gpp = ProcessingElement("arm", ElementType.GPP,
                                default_capacity(ElementType.GPP))
        assert not impl.runs_on(gpp)

    def test_runs_on_rejects_oversized_requirement(self):
        impl = dsp_implementation("x", cycles=1000)
        assert not impl.runs_on(dsp_element())

    def test_pinned_matches_only_named_element(self):
        impl = pinned_implementation("x", "d0", ResourceVector(cycles=1))
        assert impl.pinned
        assert impl.runs_on(dsp_element("d0"))
        assert not impl.runs_on(dsp_element("d1"))

    def test_unpinned_ignores_element_name(self):
        impl = dsp_implementation("x", cycles=1)
        assert not impl.pinned
        assert impl.runs_on(dsp_element("whatever"))


class TestThroughputConstraint:
    def test_satisfied_by(self):
        constraint = ThroughputConstraint(0.5)
        assert constraint.satisfied_by(0.5)
        assert constraint.satisfied_by(0.9)
        assert not constraint.satisfied_by(0.4)

    def test_positive_required(self):
        with pytest.raises(ConstraintError):
            ThroughputConstraint(0)

    def test_describe_mentions_reference(self):
        assert "sink" in ThroughputConstraint(1.0, "sink").describe()


class TestLatencyConstraint:
    def test_path_validation(self):
        with pytest.raises(ConstraintError):
            LatencyConstraint(1.0, ("a",))
        with pytest.raises(ConstraintError):
            LatencyConstraint(1.0, ("a", "b", "a"))
        with pytest.raises(ConstraintError):
            LatencyConstraint(0.0, ("a", "b"))

    def test_conversion_per_moreira_bekooij(self):
        """latency L over k stages -> throughput >= k / L."""
        constraint = LatencyConstraint(10.0, ("a", "b", "c", "d"))
        throughput = constraint.as_throughput()
        assert throughput.min_throughput == pytest.approx(4 / 10)
        assert throughput.reference_task == "d"

    def test_tighter_latency_needs_higher_throughput(self):
        loose = LatencyConstraint(20.0, ("a", "b")).as_throughput()
        tight = LatencyConstraint(5.0, ("a", "b")).as_throughput()
        assert tight.min_throughput > loose.min_throughput


class TestNormalize:
    def test_mixed_list(self):
        normalized = normalize([
            ThroughputConstraint(1.0),
            LatencyConstraint(4.0, ("a", "b")),
        ])
        assert len(normalized) == 2
        assert all(isinstance(c, ThroughputConstraint) for c in normalized)

    def test_unknown_type_rejected(self):
        with pytest.raises(ConstraintError):
            normalize(["not a constraint"])
