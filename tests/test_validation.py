"""Tests for the SDF model, analysis, throughput engine and validator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import LatencyConstraint, ThroughputConstraint
from repro.arch import AllocationState, ResourceVector, mesh
from repro.binding import bind
from repro.core import map_application
from repro.routing import BfsRouter
from repro.validation import (
    Actor,
    Edge,
    InconsistentGraphError,
    SdfError,
    SdfGraph,
    SdfModelOptions,
    analyze_throughput,
    dead_actors,
    default_reference_task,
    is_consistent,
    iteration_duration_bound,
    layout_to_sdf,
    repetition_vector,
    validate_layout,
)
from tests.conftest import chain_app, diamond_app


def ring(durations, tokens=1):
    graph = SdfGraph("ring")
    names = [f"a{i}" for i in range(len(durations))]
    for name, duration in zip(names, durations):
        graph.add_actor(Actor(name, duration))
    for i, name in enumerate(names):
        nxt = names[(i + 1) % len(names)]
        graph.connect(name, nxt,
                      initial_tokens=tokens if i == len(names) - 1 else 0)
    return graph


class TestSdfGraph:
    def test_duplicate_actor_rejected(self):
        graph = SdfGraph("g")
        graph.add_actor(Actor("a", 1.0))
        with pytest.raises(SdfError):
            graph.add_actor(Actor("a", 2.0))

    def test_edge_to_unknown_actor_rejected(self):
        graph = SdfGraph("g")
        graph.add_actor(Actor("a", 1.0))
        with pytest.raises(SdfError):
            graph.add_edge(Edge("e", "a", "ghost"))

    def test_rate_validation(self):
        with pytest.raises(SdfError):
            Edge("e", "a", "b", production=0)
        with pytest.raises(SdfError):
            Edge("e", "a", "b", initial_tokens=-1)

    def test_negative_duration_rejected(self):
        with pytest.raises(SdfError):
            Actor("a", -1.0)

    def test_is_hsdf(self):
        graph = ring([1.0, 1.0])
        assert graph.is_hsdf()
        graph.connect("a0", "a1", production=2, name="multi")
        assert not graph.is_hsdf()


class TestRepetitionVector:
    def test_hsdf_all_ones(self):
        assert repetition_vector(ring([1.0, 1.0, 1.0])) == {
            "a0": 1, "a1": 1, "a2": 1,
        }

    def test_multirate(self):
        graph = SdfGraph("mr")
        graph.add_actor(Actor("a", 1.0))
        graph.add_actor(Actor("b", 1.0))
        graph.connect("a", "b", production=3, consumption=2)
        assert repetition_vector(graph) == {"a": 2, "b": 3}

    def test_inconsistent_detected(self):
        graph = SdfGraph("bad")
        for name in "abc":
            graph.add_actor(Actor(name, 1.0))
        graph.connect("a", "b", production=2, consumption=1)
        graph.connect("b", "c", production=1, consumption=1)
        graph.connect("c", "a", production=1, consumption=1)
        with pytest.raises(InconsistentGraphError):
            repetition_vector(graph)
        assert not is_consistent(graph)

    def test_disconnected_components_independent(self):
        graph = SdfGraph("two")
        for name in "abcd":
            graph.add_actor(Actor(name, 1.0))
        graph.connect("a", "b", production=2, consumption=1)
        graph.connect("c", "d")
        vector = repetition_vector(graph)
        assert vector["a"] == 1 and vector["b"] == 2
        assert vector["c"] == vector["d"] == 1

    def test_empty_graph(self):
        assert repetition_vector(SdfGraph("empty")) == {}

    def test_iteration_bound(self):
        graph = ring([2.0, 3.0])
        assert iteration_duration_bound(graph) == 3.0


class TestDeadActors:
    def test_live_graph_has_none(self):
        assert dead_actors(ring([1.0, 1.0])) == ()

    def test_tokenless_cycle_is_dead(self):
        graph = ring([1.0, 1.0], tokens=0)
        assert set(dead_actors(graph)) == {"a0", "a1"}


class TestThroughput:
    def test_single_actor_selfloop(self):
        graph = SdfGraph("solo")
        graph.add_actor(Actor("a", 2.0))
        graph.connect("a", "a", initial_tokens=1)
        result = analyze_throughput(graph)
        assert result.of("a") == pytest.approx(0.5)

    def test_ring_throughput_is_tokens_over_cycle_time(self):
        # classic HSDF bound: throughput = tokens / sum(durations)
        graph = ring([1.0, 2.0, 3.0], tokens=1)
        assert analyze_throughput(graph).of("a0") == pytest.approx(1 / 6)
        graph2 = ring([1.0, 2.0, 3.0], tokens=2)
        assert analyze_throughput(graph2).of("a0") == pytest.approx(2 / 6)

    def test_pipeline_limited_by_slowest_stage(self):
        graph = SdfGraph("pipe")
        for name, duration in (("a", 1.0), ("b", 4.0), ("c", 2.0)):
            graph.add_actor(Actor(name, duration))
        graph.connect("a", "b")
        graph.connect("b", "c")
        # generous buffers: back edges with 3 tokens
        graph.connect("b", "a", initial_tokens=3)
        graph.connect("c", "b", initial_tokens=3)
        assert analyze_throughput(graph).of("c") == pytest.approx(1 / 4)

    def test_deadlock_reported(self):
        graph = ring([1.0, 1.0], tokens=0)
        result = analyze_throughput(graph)
        assert result.deadlocked
        assert result.of("a0") == 0.0

    def test_transient_phase_detected(self):
        # unbalanced pipeline has a fill phase before the periodic one
        graph = SdfGraph("fill")
        graph.add_actor(Actor("fast", 1.0))
        graph.add_actor(Actor("slow", 5.0))
        graph.connect("fast", "slow")
        graph.connect("slow", "fast", initial_tokens=4)
        result = analyze_throughput(graph)
        assert result.of("slow") == pytest.approx(1 / 5)

    def test_multirate_throughput_scales_with_repetitions(self):
        graph = SdfGraph("mr")
        graph.add_actor(Actor("a", 1.0))
        graph.add_actor(Actor("b", 1.0))
        graph.connect("a", "b", production=2, consumption=1)
        graph.connect("b", "a", production=1, consumption=2, initial_tokens=4)
        result = analyze_throughput(graph)
        assert result.of("b") == pytest.approx(2 * result.of("a"))

    def test_max_firings_cap(self):
        graph = ring([1.0, 1.0, 1.0])
        from repro.validation import ThroughputError
        with pytest.raises(ThroughputError):
            analyze_throughput(graph, max_firings=2)

    def test_empty_graph(self):
        result = analyze_throughput(SdfGraph("void"))
        assert result.throughput == {}


@settings(max_examples=25, deadline=None)
@given(
    durations=st.lists(st.floats(min_value=0.1, max_value=5.0),
                       min_size=2, max_size=5),
    tokens=st.integers(1, 3),
)
def test_ring_property_matches_closed_form(durations, tokens):
    """HSDF ring throughput is min(tokens / cycle time, 1 / max
    duration): the cycle-time theorem, capped by the no-auto-
    concurrency rule (an actor cannot overlap its own firings)."""
    graph = ring(durations, tokens=tokens)
    result = analyze_throughput(graph)
    expected = min(tokens / sum(durations), 1 / max(durations))
    assert result.of("a0") == pytest.approx(expected, rel=1e-6)


class TestLayoutToSdf:
    def build_layout(self, app, state):
        binding = bind(app, state)
        mapping = map_application(app, binding.choice, state)
        routing = BfsRouter().route_application(app, mapping.placement, state)
        return binding, mapping, routing

    def test_actor_per_task_and_channel(self, state3x3):
        app = chain_app(3)
        binding, mapping, routing = self.build_layout(app, state3x3)
        graph = layout_to_sdf(app, binding.choice, mapping.placement,
                              routing.routes, state3x3)
        assert len(graph.actors) == 3 + 2  # tasks + comm actors
        # 2 channels x 3 edges (data, deliver, space)
        assert len(graph.edges) == 6

    def test_route_length_sets_comm_latency(self, state3x3):
        app = chain_app(2)
        binding = bind(app, state3x3)
        placement = {"t0": "dsp_0_0", "t1": "dsp_2_2"}
        for task, element in placement.items():
            state3x3.occupy(element, app.name, task,
                            binding.choice[task].requirement)
        routing = BfsRouter().route_application(app, placement, state3x3)
        options = SdfModelOptions(hop_latency=0.5)
        graph = layout_to_sdf(app, binding.choice, placement,
                              routing.routes, state3x3, options)
        hops = routing.routes["t0->t1"].hops
        assert graph.actor("ch:t0->t1").duration == pytest.approx(0.5 * hops)

    def test_time_sharing_scales_durations(self, state3x3):
        app = chain_app(2)
        binding = bind(app, state3x3)
        placement = {"t0": "dsp_0_0", "t1": "dsp_0_0"}
        for task in placement:
            state3x3.occupy("dsp_0_0", app.name, task,
                            binding.choice[task].requirement)
        graph = layout_to_sdf(app, binding.choice, placement, {}, state3x3)
        base = binding.choice["t0"].execution_time
        assert graph.actor("t0").duration == pytest.approx(2 * base)
        solo = layout_to_sdf(
            app, binding.choice, placement, {}, state3x3,
            SdfModelOptions(model_time_sharing=False),
        )
        assert solo.actor("t0").duration == pytest.approx(base)

    def test_buffer_tokens_bound_pipelining(self, state3x3):
        app = chain_app(2)
        binding, mapping, routing = self.build_layout(app, state3x3)
        shallow = layout_to_sdf(app, binding.choice, mapping.placement,
                                routing.routes, state3x3,
                                SdfModelOptions(buffer_tokens=1))
        deep = layout_to_sdf(app, binding.choice, mapping.placement,
                             routing.routes, state3x3,
                             SdfModelOptions(buffer_tokens=8))
        t_shallow = analyze_throughput(shallow).of("t1")
        t_deep = analyze_throughput(deep).of("t1")
        assert t_deep >= t_shallow


class TestValidator:
    def test_reference_task_defaults(self):
        app = diamond_app()
        assert default_reference_task(app) == "d"  # unique sink

    def test_validate_layout_reports(self, state3x3):
        app = chain_app(3)
        app.add_constraint(ThroughputConstraint(1e-6, reference_task="t2"))
        app.add_constraint(LatencyConstraint(1e6, path=("t0", "t1", "t2")))
        binding = bind(app, state3x3)
        mapping = map_application(app, binding.choice, state3x3)
        routing = BfsRouter().route_application(app, mapping.placement, state3x3)
        report = validate_layout(app, binding.choice, mapping.placement,
                                 routing.routes, state3x3)
        assert report.satisfied
        assert len(report.checks) == 2
        assert all(c.achieved > 0 for c in report.checks)

    def test_violation_detected(self, state3x3):
        app = chain_app(3)
        app.add_constraint(ThroughputConstraint(1e9, reference_task="t2"))
        binding = bind(app, state3x3)
        mapping = map_application(app, binding.choice, state3x3)
        routing = BfsRouter().route_application(app, mapping.placement, state3x3)
        report = validate_layout(app, binding.choice, mapping.placement,
                                 routing.routes, state3x3)
        assert not report.satisfied
        assert len(report.violations()) == 1


class TestCyclicApplications:
    def make_cyclic_app(self, initial_tokens: int):
        """a -> b -> a feedback pair, optionally tokenless."""
        from repro.apps import Application, Channel
        from tests.conftest import simple_dsp_task
        app = Application("cyclic")
        app.add_task(simple_dsp_task("a"))
        app.add_task(simple_dsp_task("b"))
        app.add_channel(Channel("fwd", "a", "b", bandwidth=2.0))
        app.add_channel(Channel("back", "b", "a", bandwidth=2.0,
                                initial_tokens=initial_tokens))
        return app

    def test_feedback_tokens_prevent_deadlock(self, state3x3):
        app = self.make_cyclic_app(initial_tokens=1)
        binding = bind(app, state3x3)
        mapping = map_application(app, binding.choice, state3x3)
        routing = BfsRouter().route_application(app, mapping.placement,
                                                state3x3)
        report = validate_layout(app, binding.choice, mapping.placement,
                                 routing.routes, state3x3)
        assert not report.deadlocked
        assert report.throughput.of("a") > 0

    def test_tokenless_cycle_deadlocks(self):
        from repro.arch import AllocationState, mesh
        state = AllocationState(mesh(3, 3))
        app = self.make_cyclic_app(initial_tokens=0)
        binding = bind(app, state)
        mapping = map_application(app, binding.choice, state)
        routing = BfsRouter().route_application(app, mapping.placement, state)
        report = validate_layout(app, binding.choice, mapping.placement,
                                 routing.routes, state)
        assert report.deadlocked

    def test_negative_initial_tokens_rejected(self):
        from repro.apps import Channel, TaskGraphError
        with pytest.raises(TaskGraphError):
            Channel("c", "a", "b", initial_tokens=-1)
