"""Round-trip fuzz for the recipe and JSONL trace formats.

ROADMAP open item 4's second gap: property-based confidence that the
two persistence formats are total over their input spaces —

* **recipes round-trip byte-exactly**: any valid recipe (random knob
  combinations, optional resilience and overload blocks) survives the
  write-trace/read-trace header path with an identical canonical
  serialisation, and the overload/resilience config objects survive
  ``describe()`` → JSON → ``from_spec()`` unchanged;
* **malformed traces fail cleanly**: byte-level mutations, truncations
  and line surgery on a recorded trace make ``read_trace`` either
  succeed (the mutation kept the file well-formed) or raise the
  structured :class:`~repro.sim.trace.TraceFormatError` — never a raw
  ``JSONDecodeError``/``UnicodeDecodeError`` stack trace — and
  corrupted recipe *headers* make ``replay_trace`` /
  ``replay_cluster_trace`` raise a plain ``ValueError`` naming the
  file, never re-raise the underlying ``KeyError``/``TypeError``.

Example budgets come from the tiered profiles in ``conftest.py``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster_recipe
from repro.overload import (
    BreakerPolicy,
    BrownoutPolicy,
    DeadlinePolicy,
    OverloadConfig,
    RetryBudgetPolicy,
    WatermarkPolicy,
)
from repro.resilience import ResilienceConfig
from repro.sim import (
    TraceFormatError,
    build_recipe,
    read_trace,
    replay_trace,
    run_recipe,
    write_trace,
)


def canonical(value: dict) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


# -- strategies --------------------------------------------------------------

finite = dict(allow_nan=False, allow_infinity=False)

deadline_policies = st.builds(
    DeadlinePolicy,
    budget=st.floats(min_value=1.0, max_value=200.0, **finite),
    class_budgets=st.dictionaries(
        st.sampled_from(["interactive", "batch", "bursty"]),
        st.floats(min_value=1.0, max_value=200.0, **finite),
        max_size=3,
    ),
)

watermark_policies = st.builds(
    WatermarkPolicy,
    high=st.floats(min_value=0.55, max_value=0.95, **finite),
    low=st.floats(min_value=0.05, max_value=0.5, **finite),
    protect_priority=st.integers(min_value=0, max_value=3),
)

retry_budget_policies = st.builds(
    RetryBudgetPolicy,
    capacity=st.floats(min_value=1.0, max_value=64.0, **finite),
    refill_rate=st.floats(min_value=0.05, max_value=4.0, **finite),
)

breaker_policies = st.integers(min_value=2, max_value=16).flatmap(
    lambda window: st.builds(
        BreakerPolicy,
        window=st.just(window),
        failure_threshold=st.floats(min_value=0.1, max_value=1.0, **finite),
        min_samples=st.integers(min_value=1, max_value=window),
        cooldown=st.floats(min_value=0.5, max_value=60.0, **finite),
        half_open_probes=st.integers(min_value=1, max_value=4),
    )
)

brownout_policies = st.builds(
    BrownoutPolicy,
    high=st.floats(min_value=0.55, max_value=0.95, **finite),
    low=st.floats(min_value=0.05, max_value=0.5, **finite),
    step_up=st.integers(min_value=1, max_value=4),
    step_down=st.integers(min_value=1, max_value=6),
    max_level=st.integers(min_value=1, max_value=3),
    ring_cap=st.integers(min_value=1, max_value=4),
)

overload_configs = st.builds(
    OverloadConfig,
    deadline=st.none() | deadline_policies,
    watermark=st.none() | watermark_policies,
    retry_budget=st.none() | retry_budget_policies,
    breaker=st.none() | breaker_policies,
    brownout=st.none() | brownout_policies,
)

recipe_kwargs = st.fixed_dictionaries({
    "platform": st.sampled_from(["6x6", "8x8", "12x12"]),
    "duration": st.floats(min_value=50.0, max_value=300.0, **finite),
    "seed": st.integers(min_value=0, max_value=2**16),
    "policy": st.sampled_from(["reject", "fifo", "priority", "retry"]),
    "rate_scale": st.floats(min_value=0.5, max_value=8.0, **finite),
    "pool_size": st.integers(min_value=1, max_value=8),
    "sample_interval": st.floats(min_value=1.0, max_value=10.0, **finite),
    "warmup": st.floats(min_value=0.0, max_value=10.0, **finite),
    "faults": st.sampled_from([0, 2]),
    "fault_mttr": st.none() | st.just(2.0),
    "resilience": st.none() | st.just(ResilienceConfig()),
    "overload": st.none() | overload_configs,
})

cluster_recipe_kwargs = st.fixed_dictionaries({
    "platform": st.sampled_from(["8x8", "12x12"]),
    # shard count must divide the column count (both 8 and 12 oblige)
    "shards": st.sampled_from([1, 2, 4]),
    "duration": st.floats(min_value=60.0, max_value=300.0, **finite),
    "seed": st.integers(min_value=0, max_value=2**16),
    "policy": st.sampled_from(["fifo", "priority"]),
    "rate_scale": st.floats(min_value=0.5, max_value=8.0, **finite),
    "kills": st.sampled_from([0, 1]),
    "downtime": st.floats(min_value=5.0, max_value=15.0, **finite),
    "allow_split": st.booleans(),
    "overload": st.none() | overload_configs,
})


# -- recipe round trips ------------------------------------------------------


@settings(deadline=None)
@given(config=overload_configs)
def test_overload_config_describe_round_trips(config):
    spec = config.describe()
    blob = canonical(spec)
    again = OverloadConfig.from_spec(json.loads(blob))
    assert again == config
    assert canonical(again.describe()) == blob


@settings(deadline=None)
@given(kwargs=recipe_kwargs)
def test_recipe_header_round_trips(kwargs, tmp_path_factory):
    recipe = build_recipe(**kwargs)
    path = tmp_path_factory.mktemp("fuzz") / "t.jsonl"
    write_trace(path, [], header=recipe)
    header, records = read_trace(path)
    assert records == []
    assert canonical(header) == canonical(recipe)
    # and the loaded header builds the very same run configuration
    if recipe.get("overload") is not None:
        assert (
            OverloadConfig.from_spec(header["overload"])
            == OverloadConfig.from_spec(recipe["overload"])
        )


@settings(deadline=None)
@given(kwargs=cluster_recipe_kwargs)
def test_cluster_recipe_header_round_trips(kwargs, tmp_path_factory):
    recipe = build_cluster_recipe(**kwargs)
    path = tmp_path_factory.mktemp("fuzz") / "c.jsonl"
    write_trace(path, [], header=recipe)
    header, _ = read_trace(path)
    assert canonical(header) == canonical(recipe)


@settings(deadline=None)
@given(config=overload_configs)
def test_overload_recipe_key_is_minimal(config):
    # describe() emits only enabled components, so a recipe recorded
    # with a partial config replays with exactly that partial config
    spec = config.describe()
    for key in ("deadline", "watermark", "retry_budget", "breaker",
                "brownout"):
        assert (key in spec) == (getattr(config, key) is not None)


# -- malformed traces fail cleanly -------------------------------------------


@pytest.fixture(scope="module")
def recorded_trace(tmp_path_factory):
    """One small real trace (with an overload header) to mutate."""
    recipe = build_recipe(
        platform="6x6", duration=10.0, seed=1, policy="fifo",
        rate_scale=2.0, overload=OverloadConfig.defaults(),
    )
    path = tmp_path_factory.mktemp("trace") / "recorded.jsonl"
    run_recipe(recipe, trace_path=path)
    return path.read_bytes()


@settings(deadline=None)
@given(
    cut=st.integers(min_value=0, max_value=10**6),
    data=st.data(),
)
def test_truncated_trace_fails_cleanly(recorded_trace, tmp_path_factory,
                                       cut, data):
    blob = recorded_trace[: cut % (len(recorded_trace) + 1)]
    path = tmp_path_factory.mktemp("mut") / "truncated.jsonl"
    path.write_bytes(blob)
    try:
        read_trace(path)
    except TraceFormatError:
        pass  # the clean, structured outcome


@settings(deadline=None)
@given(
    position=st.integers(min_value=0, max_value=10**6),
    replacement=st.integers(min_value=0, max_value=255),
)
def test_byte_flip_fails_cleanly(recorded_trace, tmp_path_factory,
                                 position, replacement):
    blob = bytearray(recorded_trace)
    blob[position % len(blob)] = replacement
    path = tmp_path_factory.mktemp("mut") / "flipped.jsonl"
    path.write_bytes(bytes(blob))
    try:
        read_trace(path)
    except TraceFormatError:
        pass  # never a JSONDecodeError / UnicodeDecodeError escape


@settings(deadline=None)
@given(
    line_pick=st.integers(min_value=0),
    garbage=st.sampled_from([
        b"", b"{", b"[1, 2, 3]", b"null", b'"just a string"',
        b"{'single': 'quotes'}", b"\xff\xfe binary", b"42",
    ]),
)
def test_line_surgery_fails_cleanly(recorded_trace, tmp_path_factory,
                                    line_pick, garbage):
    lines = recorded_trace.splitlines()
    lines[line_pick % len(lines)] = garbage
    path = tmp_path_factory.mktemp("mut") / "surgery.jsonl"
    path.write_bytes(b"\n".join(lines))
    try:
        read_trace(path)
    except TraceFormatError:
        pass


def _write_header_trace(tmp_path, header_line: str):
    path = tmp_path / "bad_header.jsonl"
    path.write_text(header_line + "\n")
    return path


@pytest.mark.parametrize("header_line", [
    '{"header": {"platform": "12x12"}}',  # missing required keys
    '{"header": {"platform": "12x12", "duration": "soon", "seed": 0, '
    '"sample_interval": 5.0, "policy": {"name": "fifo"}, "classes": '
    '{"kind": "default", "seed": 0, "rate_scale": 1.0, "pool_size": 8}}}',
    '{"header": {"platform": "12x12", "duration": 10.0, "seed": 0, '
    '"sample_interval": 5.0, "policy": "fifo", "classes": null}}',
])
def test_corrupt_header_replays_as_value_error(tmp_path, header_line):
    path = _write_header_trace(tmp_path, header_line)
    with pytest.raises(ValueError) as excinfo:
        replay_trace(path)
    # the structured error names the file; the raw KeyError/TypeError
    # never escapes
    assert str(path) in str(excinfo.value)


def test_corrupt_cluster_header_replays_as_value_error(tmp_path):
    from repro.cluster import replay_cluster_trace

    path = _write_header_trace(
        tmp_path, '{"header": {"shards": 2, "platform": "12x12"}}'
    )
    with pytest.raises(ValueError) as excinfo:
        replay_cluster_trace(path)
    assert str(path) in str(excinfo.value)


def test_non_object_header_is_trace_format_error(tmp_path):
    path = _write_header_trace(tmp_path, '{"header": [1, 2, 3]}')
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_mutated_overload_block_replays_as_value_error(tmp_path):
    # an overload block of the wrong shape is caught at config
    # parsing, surfacing as the replay ValueError
    recipe = build_recipe(platform="6x6", duration=10.0, seed=1)
    recipe["overload"] = {"deadline": "yes please"}
    path = tmp_path / "bad_overload.jsonl"
    write_trace(path, [], header=recipe)
    with pytest.raises(ValueError):
        replay_trace(path)
