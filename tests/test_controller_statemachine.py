"""Stateful property test: plan/commit interleavings never corrupt state.

A Hypothesis ``RuleBasedStateMachine`` drives one *unsharded*
:class:`~repro.api.AdmissionController` through arbitrary
interleavings of the two-phase protocol with concurrent epoch
movement — the schedule a real control plane produces when admissions,
releases, faults, repairs and recovery passes land *between* a plan
and its commit.  The contract under test (ROADMAP open item 4):

* a plan whose epoch still matches commits exactly as planned — a
  committable plan admits, a failed plan replays its recorded failure
  with the same reason code, and neither sets ``replanned``;
* any epoch movement between plan and commit makes commit *replan*
  (``Decision.replanned`` is set) instead of applying a stale layout —
  whatever moved the epoch: another admission, a release, a fault, a
  repair, or a recovery pass;
* planning itself is free — epoch and utilization are bit-identical
  before and after a plan, success or failure;
* a plan commits at most once (``ValueError`` on reuse), and the
  failed double-commit changes nothing;
* through every interleaving the state stays sane: utilization within
  [0, 1], the admitted registry consistent with the specifications
  registry.

Teardown repairs all outstanding faults, releases everything and
asserts the platform drains to zero utilization.

Example budgets come from the tiered profiles in ``conftest.py``
(``HYPOTHESIS_PROFILE=determinism`` sweeps ~500 schedules).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.api import AdmissionController
from repro.arch import mesh
from repro.arch.faults import Fault, apply_fault, apply_repair
from tests.conftest import chain_app, diamond_app


class ControllerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.controller = AdmissionController(
            mesh(4, 4), validation_mode="skip"
        )
        self.pending_plans = []
        self.active_faults: list[Fault] = []
        self.elements = sorted(
            e.name for e in self.controller.platform.elements
        )
        self.next_id = 0

    # -- helpers -------------------------------------------------------------

    def _fresh_id(self, prefix: str) -> str:
        self.next_id += 1
        return f"{prefix}{self.next_id}"

    def _app(self, size: int):
        return diamond_app() if size == 0 else chain_app(size)

    # -- rules: the two-phase protocol ---------------------------------------

    @rule(size=st.integers(min_value=0, max_value=3))
    def make_plan(self, size):
        controller = self.controller
        epoch = controller.state.epoch
        utilization = controller.manager.utilization()
        plan = controller.plan(self._app(size), self._fresh_id("plan"))
        # planning is a free probe: state bit-identical either way
        assert controller.state.epoch == epoch
        assert controller.manager.utilization() == utilization
        assert plan.epoch == epoch
        self.pending_plans.append(plan)

    @precondition(lambda self: self.pending_plans)
    @rule(pick=st.integers(min_value=0))
    def commit_plan(self, pick):
        plan = self.pending_plans.pop(pick % len(self.pending_plans))
        controller = self.controller
        epoch_moved = controller.state.epoch != plan.epoch
        decision = controller.commit(plan)
        if epoch_moved:
            # the capacity landscape changed under the plan: commit
            # must recompute, never apply the stale layout or replay
            # the stale failure
            assert decision.replanned
        elif plan.ok:
            assert decision.admitted
            assert not decision.replanned
        else:
            assert not decision.admitted
            assert not decision.replanned
            assert decision.code == plan.code
        # a plan burns on commit: reuse is a programming error and
        # must not change any state
        epoch_after = controller.state.epoch
        try:
            controller.commit(plan)
        except ValueError:
            pass
        else:
            raise AssertionError("double commit did not raise")
        assert controller.state.epoch == epoch_after

    # -- rules: concurrent epoch movement ------------------------------------

    @rule(size=st.integers(min_value=1, max_value=3))
    def admit_direct(self, size):
        self.controller.admit(self._app(size), self._fresh_id("app"))

    @precondition(lambda self: self.controller.admitted)
    @rule(pick=st.integers(min_value=0))
    def release(self, pick):
        admitted = sorted(self.controller.admitted)
        app_id = admitted[pick % len(admitted)]
        self.controller.release(app_id)
        assert app_id not in self.controller.admitted

    @rule(pick=st.integers(min_value=0))
    def inject_fault(self, pick):
        faulted = {f.target[0] for f in self.active_faults}
        candidates = [e for e in self.elements if e not in faulted]
        if not candidates:
            return
        fault = Fault("element", (candidates[pick % len(candidates)],))
        apply_fault(self.controller.state, fault)
        self.active_faults.append(fault)

    @precondition(lambda self: self.active_faults)
    @rule(pick=st.integers(min_value=0))
    def repair_fault(self, pick):
        fault = self.active_faults.pop(pick % len(self.active_faults))
        apply_repair(self.controller.state, fault)

    @precondition(lambda self: self.controller.admitted)
    @rule()
    def recover(self):
        report = self.controller.manager.recover()
        # a recovery pass resolves every stranded app: re-placed or
        # reported lost, never left half-released
        for app_id in report.lost:
            assert app_id not in self.controller.admitted

    # -- invariants ----------------------------------------------------------

    @invariant()
    def utilization_bounded(self):
        assert 0.0 <= self.controller.manager.utilization() <= 1.0

    @invariant()
    def registries_agree(self):
        manager = self.controller.manager
        # every admitted app still has its original specification on
        # file (the recovery engine's re-admission source)
        for app_id in manager.admitted:
            assert app_id in manager.specifications

    def teardown(self):
        for fault in self.active_faults:
            apply_repair(self.controller.state, fault)
        self.controller.release_all()
        assert self.controller.admitted == {}
        assert self.controller.manager.utilization() == 0.0


TestControllerMachine = ControllerMachine.TestCase
TestControllerMachine.settings = settings(
    deadline=None, stateful_step_count=30
)
