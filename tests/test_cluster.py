"""The cluster subsystem: liveness, routing, 2PC, lockstep, campaigns.

Pins the contracts ``docs/cluster.md`` documents:

* the liveness automaton (``live → stale → dead`` with probation
  hysteresis, fault-storm demotion, the sliding window) driven purely
  by caller-supplied sim-time — the wall-clock regression test patches
  every ``time`` primitive to explode and runs the full automaton;
* deterministic routing — CRC32 placement hints, ring spill-over,
  liveness filtering, and the killed-but-undetected window covered by
  ``SHARD_DOWN`` rejections;
* the two-phase commit — all-or-unwind on mid-commit shard death (no
  partial allocation survives, asserted via ``verify_integrity``),
  bounded retry on transient failures, immediate abort on
  ``SHARD_DOWN``, structural task-graph splitting;
* the single-shard lockstep contract — a 1-shard cluster replays the
  unsharded service digest-for-digest — plus the digest-pinned
  shard-kill fixture (``tests/data/cluster_shard_kill.jsonl``), the
  cluster twin of ``pre_resilience_faults.jsonl``;
* the end-to-end kill campaign: kill → missed heartbeats → demotion →
  recovery re-placement → probation → revival, draining to zero with
  clean integrity.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.api.controller import Decision
from repro.arch import mesh
from repro.cluster import (
    ClusterManager,
    LivenessPolicy,
    LivenessRegistry,
    Shard,
    ShardLiveness,
    ShardRouter,
    build_cluster_recipe,
    build_shards,
    placement_hint,
    replay_cluster_trace,
    run_cluster_recipe,
    split_application,
)
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.registry import ROUTABLE_STATES
from repro.manager.layout import Phase, PhaseTimings
from repro.reasons import ReasonCode
from repro.sim import build_recipe, run_recipe
from repro.sim.trace import read_trace, trace_digest
from tests.conftest import chain_app, simple_dsp_task

FIXTURES = Path(__file__).parent / "data"

#: the canonical shard-kill campaign (2 shards on 8x8, one mid-run
#: kill whose downtime crosses ``dead_after``: the full
#: kill → stale → dead → recovery → probation → live arc in ~1s)
KILL_RECIPE = dict(
    platform="8x8", shards=2, duration=40.0, seed=0, policy="fifo",
    rate_scale=6.0, pool_size=6, sample_interval=5.0,
    kills=1, downtime=15.0,
)

#: the 1-shard lockstep workload (mirrored by the unsharded recipe)
LOCKSTEP = dict(
    platform="6x6", duration=30.0, seed=3, policy="fifo",
    rate_scale=4.0, pool_size=6, sample_interval=5.0,
)


def records_of(trace: list[dict], kind: str) -> list[dict]:
    return [record for record in trace if record["kind"] == kind]


# -- liveness automaton ------------------------------------------------------


def registered(policy: LivenessPolicy | None = None) -> LivenessRegistry:
    registry = LivenessRegistry(policy)
    registry.register("s0", now=0.0)
    return registry


class TestLivenessAutomaton:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            LivenessPolicy(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            LivenessPolicy(stale_after=5.0, dead_after=5.0)
        with pytest.raises(ValueError):
            LivenessPolicy(heartbeat_interval=3.0, stale_after=2.5)
        with pytest.raises(ValueError):
            LivenessPolicy(probation=0.0)
        with pytest.raises(ValueError):
            LivenessPolicy(storm_faults=0)
        with pytest.raises(ValueError):
            LivenessPolicy(storm_window=0.0)

    def test_policy_round_trips_through_describe(self):
        policy = LivenessPolicy(stale_after=2.0, dead_after=4.0)
        assert LivenessPolicy.from_params(policy.describe()) == policy
        assert LivenessPolicy.from_params(None) == LivenessPolicy()

    def test_silence_walks_live_stale_dead(self):
        registry = registered()
        assert registry.observe(1.0) == []  # inside the deadline
        (stale,) = registry.observe(3.0)  # silence 3.0 >= 2.5
        assert (stale.previous, stale.state) == (
            ShardLiveness.LIVE, ShardLiveness.STALE
        )
        assert stale.reason == "missed_heartbeats"
        assert registry.routable("s0")  # stale keeps taking traffic
        (dead,) = registry.observe(5.0)  # silence 5.0 >= 5.0
        assert dead.state is ShardLiveness.DEAD
        assert not registry.routable("s0")
        assert registry.routable_ids() == ()

    def test_beat_restores_stale_to_live(self):
        registry = registered()
        registry.observe(3.0)
        (back,) = registry.heartbeat("s0", 3.5)
        assert (back.state, back.reason) == (
            ShardLiveness.LIVE, "heartbeat_resumed"
        )
        assert registry.observe(4.0) == []  # deadline refreshed

    def test_revival_serves_probation_before_trust(self):
        registry = registered()
        registry.observe(5.0)
        (revived,) = registry.heartbeat("s0", 6.0)
        assert (revived.state, revived.reason) == (
            ShardLiveness.PROBATION, "revived"
        )
        assert not registry.routable("s0")  # revival is not trust
        registry.heartbeat("s0", 7.0)
        registry.heartbeat("s0", 8.0)
        assert registry.observe(8.0) == []  # probation still running
        registry.heartbeat("s0", 9.0)
        (live,) = registry.observe(9.0)  # 9.0 - 6.0 >= probation 3.0
        assert (live.state, live.reason) == (
            ShardLiveness.LIVE, "probation_elapsed"
        )
        assert registry.routable("s0")

    def test_flapping_in_probation_demotes_again(self):
        registry = registered()
        registry.observe(5.0)
        registry.heartbeat("s0", 6.0)  # probation starts, then silence
        (flapped,) = registry.observe(9.0)  # silence 3.0 >= stale_after
        assert (flapped.state, flapped.reason) == (
            ShardLiveness.DEAD, "flapped"
        )

    def test_fault_storm_demotes_a_beating_shard(self):
        registry = registered(LivenessPolicy(storm_faults=3,
                                             storm_window=10.0))
        assert registry.note_fault("s0", 1.0) == []
        assert registry.note_fault("s0", 2.0) == []
        registry.heartbeat("s0", 2.5)  # heartbeats keep arriving
        (storm,) = registry.note_fault("s0", 3.0)
        assert (storm.state, storm.reason) == (
            ShardLiveness.DEAD, "fault_storm"
        )

    def test_storm_window_slides_old_faults_out(self):
        registry = registered(LivenessPolicy(storm_faults=3,
                                             storm_window=10.0))
        registry.note_fault("s0", 1.0)
        registry.note_fault("s0", 2.0)
        # the first two faults left the window: density back to 1
        assert registry.note_fault("s0", 13.0) == []
        assert registry.state("s0") is ShardLiveness.LIVE

    def test_forced_demotion_is_idempotent(self):
        registry = registered()
        (down,) = registry.demote("s0", 1.0, reason="operator")
        assert (down.state, down.reason) == (ShardLiveness.DEAD, "operator")
        assert registry.demote("s0", 2.0) == []

    def test_generation_bumps_on_every_transition(self):
        registry = registered()
        assert registry.generation == 0
        registry.observe(3.0)  # -> stale
        registry.heartbeat("s0", 3.5)  # -> live
        assert registry.generation == 2

    def test_registration_and_lookup_errors(self):
        registry = registered()
        with pytest.raises(ValueError):
            registry.register("s0")
        with pytest.raises(KeyError):
            registry.state("ghost")
        assert registry.shard_ids == ("s0",)

    def test_summary_counts_states(self):
        registry = registered()
        registry.register("s1", now=0.0)
        registry.demote("s1", 1.0)
        assert registry.summary() == {
            "tracked": 2,
            "states": {"dead": 1, "live": 1},
            "generation": 1,
        }

    def test_automaton_never_touches_the_wall_clock(self, monkeypatch):
        """Satellite regression: liveness runs on the sim's virtual
        clock only.  Every wall-clock primitive is booby-trapped; a
        future ``time.time()`` inside the registry explodes here."""
        def bomb(*_args):  # pragma: no cover - triggers only on bugs
            raise AssertionError("liveness read the wall clock")

        for name in ("time", "monotonic", "perf_counter", "time_ns",
                     "monotonic_ns", "perf_counter_ns"):
            monkeypatch.setattr(time, name, bomb)
        registry = registered()
        registry.observe(3.0)
        registry.heartbeat("s0", 3.5)
        registry.observe(9.0)  # silent since 3.5: dead
        registry.heartbeat("s0", 10.0)  # probation
        registry.note_fault("s0", 10.5)
        for when in (11.0, 12.0, 13.0):
            registry.heartbeat("s0", when)
        registry.observe(13.0)  # probation elapsed, beats kept coming
        assert registry.state("s0") is ShardLiveness.LIVE


# -- routing -----------------------------------------------------------------


class TestRouting:
    def test_placement_hint_is_stable_across_processes(self):
        # CRC32, not hash(): PYTHONHASHSEED must not influence routing
        assert placement_hint("interactive#0") == 3668390340
        assert placement_hint("x") == placement_hint("x")

    def test_candidates_ring_from_home(self):
        shards = build_shards(2, 4, 2)
        liveness = LivenessRegistry()
        for shard in shards:
            liveness.register(shard.shard_id)
        router = ShardRouter(shards, liveness)
        app_id = "app"
        home = router.home(app_id)
        candidates = router.candidates(app_id)
        assert [s.shard_id for s in candidates][0] == home.shard_id
        assert sorted(s.shard_id for s in candidates) == ["s0", "s1"]

    def test_dead_and_probation_shards_are_filtered(self):
        shards = build_shards(2, 4, 2)
        liveness = LivenessRegistry()
        for shard in shards:
            liveness.register(shard.shard_id)
        router = ShardRouter(shards, liveness)
        liveness.demote("s0", 1.0)
        assert [s.shard_id for s in router.candidates("app")] == ["s1"]
        liveness.heartbeat("s0", 2.0)  # probation: still not routable
        assert [s.shard_id for s in router.candidates("app")] == ["s1"]
        assert ROUTABLE_STATES == {ShardLiveness.LIVE, ShardLiveness.STALE}

    def test_router_needs_shards(self):
        with pytest.raises(ValueError):
            ShardRouter([], LivenessRegistry())


# -- shards ------------------------------------------------------------------


class TestShard:
    def test_kill_wipes_and_rejects_with_shard_down(self):
        shard = Shard("s0", mesh(2, 2))
        assert shard.admit(chain_app(2), "a").admitted
        lost = shard.kill()
        assert lost == ("a",)
        assert not shard.alive and shard.manager.admitted == {}
        decision = shard.admit(chain_app(2), "b")
        assert not decision.admitted
        assert decision.code is ReasonCode.SHARD_DOWN
        assert decision.phase is Phase.BINDING
        assert shard.plan(chain_app(2), "c") is None
        shard.revive()
        assert shard.admit(chain_app(2), "d").admitted

    def test_release_tolerates_wiped_residents(self):
        shard = Shard("s0", mesh(2, 2))
        shard.admit(chain_app(2), "a")
        shard.kill()
        assert shard.release("a") is False
        shard.revive()
        shard.admit(chain_app(2), "b")
        assert shard.release("b") is True

    def test_build_shards_partitions_column_bands(self):
        shards = build_shards(4, 8, 4)
        assert [s.shard_id for s in shards] == ["s0", "s1", "s2", "s3"]
        sizes = {len(s.platform.elements) for s in shards}
        assert sizes == {8}  # 4 rows x 2 columns each
        with pytest.raises(ValueError):
            build_shards(4, 6, 4)  # 6 columns do not split into 4
        with pytest.raises(ValueError):
            build_shards(4, 4, 0)

    def test_single_shard_platform_is_the_plain_mesh(self):
        (shard,) = build_shards(3, 3, 1)
        plain = mesh(3, 3)
        assert shard.platform.name == plain.name
        assert len(shard.platform.elements) == len(plain.elements)


# -- splitting ---------------------------------------------------------------


class TestSplitApplication:
    def test_chain_splits_into_connected_halves(self):
        result = split_application(chain_app(4), parts=2)
        assert result is not None
        parts, cut = result
        assert [p.name for p in parts] == ["chain4::p0", "chain4::p1"]
        assert [sorted(p.tasks) for p in parts] == [
            ["t0", "t1"], ["t2", "t3"]
        ]
        assert cut == 1  # the t1 -> t2 channel crosses the cut
        assert all(p.is_connected() for p in parts)

    def test_too_small_or_disconnected_is_unsplittable(self):
        assert split_application(chain_app(1), parts=2) is None
        from repro.apps import Application

        island = Application("islands")
        island.add_task(simple_dsp_task("a"))
        island.add_task(simple_dsp_task("b"))  # no channel: disconnected
        assert split_application(island, parts=2) is None

    def test_split_is_deterministic(self):
        first = split_application(chain_app(5), parts=2)
        second = split_application(chain_app(5), parts=2)
        assert [sorted(p.tasks) for p in first[0]] == [
            sorted(p.tasks) for p in second[0]
        ]


# -- the two-phase commit ----------------------------------------------------


def two_small_shards() -> list[Shard]:
    """Two 2-element shards (2x2 mesh split into 1-column bands)."""
    return build_shards(2, 2, 2)


class _KillOnCommit(Shard):
    """Dies between the plan and commit phases — the mid-commit crash."""

    def commit(self, plan):
        self.kill()
        return super().commit(plan)


class _FlakyCommit(Shard):
    """Fails the first commit with a transient (retryable) conflict."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.failures_left = 1

    def commit(self, plan):
        if self.failures_left:
            self.failures_left -= 1
            return Decision(
                admitted=False,
                app_id=plan.app_id,
                epoch=self.manager.state.epoch,
                phase=Phase.BINDING,
                reason="synthetic transient conflict",
                code=ReasonCode.EPOCH_CONFLICT,
                timings=PhaseTimings(),
            )
        return super().commit(plan)


def shard_pair(second_cls=Shard) -> list[Shard]:
    return [
        Shard("s0", mesh(2, 1, name="band0_2x1")),
        second_cls("s1", mesh(2, 1, name="band1_2x1")),
    ]


class TestCoordinator:
    def test_split_admission_commits_on_both_shards(self):
        shards = two_small_shards()
        result = ClusterCoordinator().admit_split(
            chain_app(4, cycles=60), "big", shards
        )
        assert result.decision.admitted
        assert result.parts == (("s0", "big::p0"), ("s1", "big::p1"))
        assert result.cut_channels == 1
        assert "big::p0" in shards[0].manager.admitted
        assert "big::p1" in shards[1].manager.admitted

    def test_mid_commit_shard_death_unwinds_everything(self):
        shards = shard_pair(_KillOnCommit)
        result = ClusterCoordinator().admit_split(
            chain_app(4, cycles=60), "big", shards
        )
        assert not result.decision.admitted
        assert result.decision.code is ReasonCode.CROSS_SHARD_INFEASIBLE
        assert result.attempts == 1  # SHARD_DOWN never retries
        # the all-or-nothing guarantee: the committed first half was
        # released during unwind — no shard holds any part
        assert shards[0].manager.admitted == {}
        assert shards[1].manager.admitted == {}

    def test_transient_commit_failure_retries_and_succeeds(self):
        shards = shard_pair(_FlakyCommit)
        result = ClusterCoordinator(max_retries=2).admit_split(
            chain_app(4, cycles=60), "big", shards
        )
        assert result.decision.admitted
        assert result.attempts == 2
        assert "big::p0" in shards[0].manager.admitted
        assert "big::p1" in shards[1].manager.admitted

    def test_retry_budget_exhausts_without_leaking(self):
        shards = shard_pair(_FlakyCommit)
        shards[1].failures_left = 10
        result = ClusterCoordinator(max_retries=1).admit_split(
            chain_app(4, cycles=60), "big", shards
        )
        assert not result.decision.admitted
        assert result.attempts == 2  # 1 + max_retries
        assert shards[0].manager.admitted == {}

    def test_dead_shard_at_plan_time_aborts_with_nothing_to_unwind(self):
        shards = shard_pair()
        shards[1].kill()
        result = ClusterCoordinator().admit_split(
            chain_app(4, cycles=60), "big", shards
        )
        assert not result.decision.admitted
        assert result.attempts == 1
        assert shards[0].manager.admitted == {}

    def test_unsplittable_app_fails_structurally(self):
        result = ClusterCoordinator().admit_split(
            chain_app(1), "tiny", two_small_shards()
        )
        assert not result.decision.admitted
        assert result.decision.code is ReasonCode.CROSS_SHARD_INFEASIBLE
        assert result.attempts == 0

    def test_coordinator_validation(self):
        with pytest.raises(ValueError):
            ClusterCoordinator(max_retries=-1)
        with pytest.raises(ValueError):
            ClusterCoordinator().admit_split(
                chain_app(4), "x", two_small_shards()[:1]
            )


# -- the cluster manager -----------------------------------------------------


class TestClusterManager:
    def test_single_shard_routing_and_release(self):
        cluster = ClusterManager(build_shards(2, 4, 2))
        decision = cluster.admit(chain_app(2), "a")
        assert decision.admitted
        assert cluster.admitted["a"] in ((("s0", "a"),), (("s1", "a"),))
        with pytest.raises(ValueError):
            cluster.admit(chain_app(2), "a")
        cluster.release("a")
        assert cluster.admitted == {}
        with pytest.raises(KeyError):
            cluster.release("a")

    def test_spillover_covers_the_undetected_kill_window(self):
        cluster = ClusterManager(build_shards(2, 4, 2))
        app_id = "app"
        home = cluster.router.home(app_id)
        home.kill()  # killed but liveness has not noticed yet
        decision = cluster.admit(chain_app(2), app_id)
        assert decision.admitted
        ((shard_id, _),) = cluster.admitted[app_id]
        assert shard_id != home.shard_id
        assert cluster._c_spillovers.value == 1

    def test_fully_demoted_cluster_is_unavailable(self):
        cluster = ClusterManager(build_shards(2, 4, 2))
        for shard_id in ("s0", "s1"):
            cluster.liveness.demote(shard_id, 1.0)
        decision = cluster.admit(chain_app(2), "a")
        assert not decision.admitted
        assert decision.code is ReasonCode.CLUSTER_UNAVAILABLE

    def test_oversized_app_falls_back_to_a_split(self):
        # each shard holds 2 elements; four 60-cycle tasks need 4
        cluster = ClusterManager([
            Shard("s0", mesh(2, 1, name="band0_2x1")),
            Shard("s1", mesh(2, 1, name="band1_2x1")),
        ])
        decision = cluster.admit(chain_app(4, cycles=60), "big")
        assert decision.admitted
        assert len(cluster.admitted["big"]) == 2
        assert cluster._c_splits.value == 1
        assert decision.layout.cut_channels == 1
        cluster.release("big")  # releases both parts
        assert all(s.manager.admitted == {} for s in cluster.shards)

    def test_split_disabled_returns_the_single_shard_failure(self):
        cluster = ClusterManager([
            Shard("s0", mesh(2, 1, name="band0_2x1")),
            Shard("s1", mesh(2, 1, name="band1_2x1")),
        ], allow_split=False)
        decision = cluster.admit(chain_app(4, cycles=60), "big")
        assert not decision.admitted
        assert decision.code is not ReasonCode.CROSS_SHARD_INFEASIBLE

    def test_stranded_by_faults_reports_kill_victims(self):
        cluster = ClusterManager(build_shards(2, 4, 2))
        cluster.admit(chain_app(2), "a")
        ((shard_id, _),) = cluster.admitted["a"]
        assert cluster.stranded_by_faults() == ()
        cluster.by_id[shard_id].kill()
        assert cluster.stranded_by_faults() == ("a",)

    def test_epoch_moves_on_liveness_and_capacity_changes(self):
        cluster = ClusterManager(build_shards(2, 4, 2))
        first = cluster.epoch
        cluster.liveness.demote("s0", 1.0)
        second = cluster.epoch
        assert first != second  # generation folded into the epoch
        cluster.state.touch()
        assert cluster.epoch != second
        before = cluster.epoch
        cluster.admit(chain_app(2), "a")
        assert cluster.epoch != before  # shard-local epoch moved

    def test_utilization_passthrough_and_weighted_mean(self):
        single = ClusterManager(build_shards(3, 3, 1))
        single.admit(chain_app(2), "a")
        assert single.utilization() == (
            single.shards[0].manager.utilization()
        )
        double = ClusterManager(build_shards(2, 4, 2))
        double.admit(chain_app(2), "a")
        expected = sum(
            s.manager.utilization() * len(s.platform.elements)
            for s in double.shards
        ) / sum(len(s.platform.elements) for s in double.shards)
        assert double.utilization() == pytest.approx(expected)

    def test_verify_integrity_flags_orphans_and_duplicates(self):
        cluster = ClusterManager(build_shards(2, 4, 2))
        cluster.admit(chain_app(2), "a")
        assert cluster.verify_integrity() == []
        # an allocation the cluster never booked: exactly what a
        # leaked partial commit would look like
        cluster.shards[0].controller.admit(chain_app(2), "ghost")
        (violation,) = cluster.verify_integrity()
        assert "orphan" in violation and "ghost" in violation
        cluster.shards[0].release("ghost")
        cluster.admitted["b"] = cluster.admitted["a"]
        (violation,) = cluster.verify_integrity()
        assert "duplicate ownership" in violation

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ClusterManager([])
        with pytest.raises(ValueError):
            shard = Shard("s0", mesh(2, 2))
            ClusterManager([shard, Shard("s0", mesh(2, 2))])

    def test_summary_is_json_able(self):
        import json

        cluster = ClusterManager(build_shards(2, 4, 2))
        cluster.admit(chain_app(2), "a")
        summary = cluster.summary()
        json.dumps(summary)
        assert summary["shards"] == 2 and summary["admitted"] == 1


# -- recovery through the cluster --------------------------------------------


class TestClusterRecovery:
    def test_engine_readmits_kill_victims_on_the_surviving_shard(self):
        cluster = ClusterManager(build_shards(2, 4, 2))
        cluster.admit(chain_app(2), "a")
        ((shard_id, _),) = cluster.admitted["a"]
        cluster.by_id[shard_id].kill()
        engine = cluster.controller.recovery_engine()
        outcome = engine.recovery_pass(now=1.0)
        assert "a" in outcome.recovered
        ((new_shard, _),) = cluster.admitted["a"]
        assert new_shard != shard_id
        assert cluster.verify_integrity() == []


# -- recipes and validation --------------------------------------------------


class TestClusterRecipes:
    def test_recipe_round_trip_and_validation(self):
        recipe = build_cluster_recipe(**KILL_RECIPE)
        assert recipe["shards"] == 2 and recipe["kills"] == 1
        assert recipe["downtime"] == 15.0
        assert LivenessPolicy.from_params(recipe["heartbeat"]) == (
            LivenessPolicy()
        )
        with pytest.raises(ValueError):
            build_cluster_recipe(platform="notamesh")
        with pytest.raises(ValueError):
            build_cluster_recipe(platform="8x6", shards=4)
        with pytest.raises(ValueError):
            # the revival would land beyond the horizon
            build_cluster_recipe(platform="8x8", shards=2, duration=10.0,
                                 kills=1, downtime=50.0)

    def test_plain_replay_rejects_cluster_traces(self, tmp_path):
        from repro.sim import replay_trace

        path = tmp_path / "cluster.jsonl"
        recipe = build_cluster_recipe(
            platform="6x6", shards=1, duration=10.0, rate_scale=2.0
        )
        run_cluster_recipe(recipe, trace_path=path)
        with pytest.raises(ValueError, match="replay_cluster_trace"):
            replay_trace(path)


# -- the single-shard lockstep contract --------------------------------------


class TestLockstep:
    def test_one_shard_cluster_matches_the_unsharded_service(self):
        """The acceptance gate: bit-identical decisions and digests.

        The cluster run carries a liveness registry, heartbeat pulses
        and a recovery engine — all of which must be invisible without
        kills: no extra trace records, no extra RNG draws."""
        unsharded = run_recipe(build_recipe(**LOCKSTEP))
        cluster = run_cluster_recipe(
            build_cluster_recipe(shards=1, **LOCKSTEP)
        )
        assert trace_digest(cluster.trace) == trace_digest(unsharded.trace)
        assert cluster.metrics.admitted == unsharded.metrics.admitted
        assert cluster.metrics.dropped == unsharded.metrics.dropped
        assert [s.utilization for s in cluster.metrics.samples] == (
            [s.utilization for s in unsharded.metrics.samples]
        )


# -- the kill campaign, end to end -------------------------------------------


class TestKillCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_cluster_recipe(build_cluster_recipe(**KILL_RECIPE))

    def test_kill_walks_the_full_liveness_arc(self, campaign):
        (kill,) = records_of(campaign.trace, "shard_kill")
        assert kill["lost"] > 0
        states = [
            (r["state"], r["reason"])
            for r in records_of(campaign.trace, "shard_state")
        ]
        assert ("stale", "missed_heartbeats") in states
        assert ("dead", "missed_heartbeats") in states
        assert ("probation", "revived") in states
        assert ("live", "probation_elapsed") in states

    def test_victims_are_recovered_not_leaked(self, campaign):
        passes = records_of(campaign.trace, "recovery")
        assert passes and any(p["stranded"] for p in passes)
        metrics = campaign.metrics
        assert metrics.recovered > 0
        # every victim is accounted for: re-placed, requeued-then-
        # readmitted, or an explicit loss — and the drain left zero
        assert campaign.post_drain_utilization == 0.0
        assert metrics.summary()["resilience"]["availability"] < 1.0

    def test_campaign_replays_bit_identically(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_cluster_recipe(build_cluster_recipe(**KILL_RECIPE),
                           trace_path=path)
        identical, differences, _ = replay_cluster_trace(path)
        assert identical, differences[:5]

    def test_pinned_fixture_replays_bit_identically(self):
        """The cluster twin of ``pre_resilience_faults.jsonl``: a
        committed shard-kill trace must replay byte-for-byte on every
        future revision — digest-pinned so even a reordered recovery
        or an extra heartbeat record is caught."""
        path = FIXTURES / "cluster_shard_kill.jsonl"
        _header, records = read_trace(path)
        assert trace_digest(records) == PINNED_KILL_DIGEST
        identical, differences, result = replay_cluster_trace(path)
        assert identical, differences[:5]
        assert trace_digest(result.trace) == trace_digest(records)


#: digest of the committed fixture (recorded from ``KILL_RECIPE``);
#: regenerate fixture and digest together or not at all — a mismatch
#: is a determinism regression, not a test to "fix"
PINNED_KILL_DIGEST = (
    "f303e9fac3a9667bb1a2d08ec9448f65"
    "488bfc5e2399f7523feee9447f819e55"
)
