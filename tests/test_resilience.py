"""The resilience subsystem: health automaton, recovery engine, requeue.

Pins the contracts ``docs/resilience.md`` documents:

* the health state machine (``live → dead → repairing → suspect /
  degraded``) with hysteresis, wear counting and soft penalties, and
  the bit-identity of :class:`HealthAwareCost` while no penalty exists;
* recovery ordering — the legacy alphabetical order's starvation of
  large/high-priority applications (the regression this PR fixes) and
  the policy orders that resolve it;
* idempotency (a second ``recover()`` is a no-op at an unchanged
  epoch) and crash consistency (a fault landing between the
  strandedness observation and re-admission never corrupts state);
* the requeue — epoch-guarded drains, exponential backoff, retry
  exhaustion, expiry — and the end-to-end service behaviour: under
  randomized churn + fault storm + repair the service drains to zero,
  replays bit-identically, and re-admits previously-lost applications
  through the retry queue;
* the legacy path: without a resilience config, traces (including the
  committed pre-resilience fixture) are byte-identical to pre-PR runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import AllocationError, AllocationState, mesh
from repro.arch.faults import Fault, apply_fault
from repro.apps import Application
from repro.manager import Kairos
from repro.resilience import (
    HealthAwareCost,
    HealthPolicy,
    HealthRegistry,
    HealthState,
    RecoveryPolicy,
    ResilienceConfig,
)
from repro.sim import (
    EventKind,
    build_recipe,
    replay_trace,
    run_recipe,
)
from repro.sim.trace import read_trace, trace_digest
from tests.conftest import simple_dsp_task

FIXTURES = Path(__file__).parent / "data"

#: the canonical randomized churn + fault-storm + repair scenario
#: (priority queue, correlated storm, short MTTR — exercises repair,
#: quarantine, requeue recovery and drain in ~0.2s)
STORM_RECIPE = dict(
    platform="6x6", duration=30.0, seed=3, policy="priority",
    rate_scale=8.0, pool_size=6, sample_interval=5.0,
    faults=2, fault_mttr=5.0, fault_storm=1, resilience={},
)


def element_fault(name: str, repair_after=None) -> Fault:
    return Fault("element", (name,), repair_after=repair_after)


def records_of(trace: list[dict], kind: str) -> list[dict]:
    return [record for record in trace if record["kind"] == kind]


# -- health automaton --------------------------------------------------------


class TestHealthAutomaton:
    def test_fault_marks_dead_and_counts_wear(self):
        registry = HealthRegistry()
        fault = element_fault("e")
        transitions = registry.on_fault(fault, now=1.0)
        assert [t.state for t in transitions] == [HealthState.DEAD]
        assert registry.element_state("e") is HealthState.DEAD
        assert registry.fault_count("e") == 1
        # a second fault on a dead element counts wear, no transition
        assert registry.on_fault(fault, now=2.0) == []
        assert registry.fault_count("e") == 2

    def test_repair_starts_probation_with_penalty(self):
        registry = HealthRegistry()
        fault = element_fault("e")
        registry.on_fault(fault, now=0.0)
        transitions = registry.on_repair(fault, now=1.0)
        assert [t.state for t in transitions] == [HealthState.REPAIRING]
        assert registry.element_state("e") is HealthState.REPAIRING
        assert registry.element_penalty("e") == (
            registry.policy.repairing_penalty
        )
        # repairing a live element changes nothing
        assert registry.on_repair(element_fault("other"), now=1.0) == []

    def test_probation_settles_live_below_suspect_threshold(self):
        registry = HealthRegistry(HealthPolicy(probation=10.0))
        fault = element_fault("e")
        registry.on_fault(fault, now=0.0)
        registry.on_repair(fault, now=1.0)
        assert registry.observe(5.0) == []  # probation still running
        transitions = registry.observe(11.0)
        assert [t.state for t in transitions] == [HealthState.LIVE]
        assert registry.element_penalty("e") == 0.0

    def test_wear_settles_suspect_then_recovers_live(self):
        policy = HealthPolicy(probation=10.0, suspect_after=2)
        registry = HealthRegistry(policy)
        fault = element_fault("e")
        for start in (0.0, 30.0):
            registry.on_fault(fault, now=start)
            registry.on_repair(fault, now=start + 1.0)
            registry.observe(start + 12.0)
        assert registry.element_state("e") is HealthState.SUSPECT
        assert registry.element_penalty("e") == policy.suspect_penalty
        # a clean probation window promotes suspect back to live
        transitions = registry.observe(30.0 + 12.0 + policy.probation)
        assert [t.state for t in transitions] == [HealthState.LIVE]
        assert registry.element_penalty("e") == 0.0

    def test_degraded_is_sticky(self):
        policy = HealthPolicy(probation=5.0, suspect_after=2, degrade_after=3)
        registry = HealthRegistry(policy)
        fault = element_fault("e")
        for start in (0.0, 20.0, 40.0):
            registry.on_fault(fault, now=start)
            registry.on_repair(fault, now=start + 1.0)
            registry.observe(start + 7.0)
        assert registry.element_state("e") is HealthState.DEGRADED
        assert registry.element_penalty("e") == policy.degraded_penalty
        # degraded never promotes, however long the clean window
        assert registry.observe(1000.0) == []
        assert registry.element_state("e") is HealthState.DEGRADED

    def test_link_health_tracked_without_element_penalty(self):
        registry = HealthRegistry()
        fault = Fault("link", ("b", "a"))
        registry.on_fault(fault, now=0.0)
        # the key is endpoint-order normalized
        assert registry.link_state("a", "b") is HealthState.DEAD
        assert registry.link_state("b", "a") is HealthState.DEAD
        registry.on_repair(fault, now=1.0)
        assert registry.link_state("a", "b") is HealthState.REPAIRING
        assert registry.element_penalties == {}

    def test_summary_counts_states(self):
        registry = HealthRegistry()
        registry.on_fault(element_fault("e1"), now=0.0)
        registry.on_fault(Fault("link", ("a", "b")), now=0.0)
        summary = registry.summary()
        assert summary["tracked"] == 2
        assert summary["states"] == {"dead": 2}

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(probation=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(suspect_after=0)
        with pytest.raises(ValueError):
            HealthPolicy(suspect_after=3, degrade_after=2)
        with pytest.raises(ValueError):
            HealthPolicy(suspect_penalty=-1.0)


class TestHealthAwareCost:
    class _Element:
        def __init__(self, name):
            self.name = name

    @staticmethod
    def _base(*_args):
        return 7.25

    def test_no_penalties_returns_base_unchanged(self):
        registry = HealthRegistry()
        cost = HealthAwareCost(self._base, registry)
        args = (None, "a", "t", self._Element("e"), None, {}, {})
        assert cost(*args) == 7.25

    def test_penalized_element_pays_unpenalized_does_not(self):
        registry = HealthRegistry()
        fault = element_fault("flaky")
        registry.on_fault(fault, now=0.0)
        registry.on_repair(fault, now=1.0)
        cost = HealthAwareCost(self._base, registry)
        args = lambda name: (None, "a", "t", self._Element(name), None, {}, {})
        assert cost(*args("flaky")) == (
            7.25 + registry.policy.repairing_penalty
        )
        assert cost(*args("healthy")) == 7.25

    # profile-governed lockstep property (see conftest.py): a manager
    # with an idle health registry must allocate bit-identically to a
    # plain one — the wrapper may not perturb a single decision until
    # a penalty actually exists
    @settings(deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_idle_registry_is_bit_identical(self, seed):
        from repro.apps import GeneratorConfig, generate

        app = generate(
            GeneratorConfig(inputs=1, internals=4, outputs=1,
                            utilization_low=0.2, utilization_high=0.5),
            seed=seed,
        )
        plain = Kairos(mesh(4, 4), validation_mode="skip")
        health = Kairos(mesh(4, 4), validation_mode="skip",
                        health=HealthRegistry())
        layouts = []
        for manager in (plain, health):
            decision = manager.controller.admit(app, "x")
            if decision.admitted:
                layouts.append((
                    "ok",
                    tuple(sorted(decision.layout.placement.items())),
                    tuple(
                        (name, route.path) for name, route
                        in sorted(decision.layout.routes.items())
                    ),
                ))
            else:
                layouts.append(("fail", decision.phase.value))
        assert layouts[0] == layouts[1]


# -- recovery ordering (the starvation regression) ---------------------------


def big_app() -> Application:
    """Two connected 60-cycle tasks: needs two elements at once."""
    app = Application("big")
    first = app.add_task(simple_dsp_task("t0", cycles=60))
    second = app.add_task(simple_dsp_task("t1", cycles=60))
    app.connect(first, second, bandwidth=5.0)
    return app


def small_app() -> Application:
    app = Application("small")
    app.add_task(simple_dsp_task("t0", cycles=60))
    return app


def starved_manager() -> Kairos:
    """A 2x2 mesh where recovery capacity fits *either* the big app
    *or* the small one — never both.

    ``z_big`` (two tasks) is admitted first but sorts last
    alphabetically; ``a_small`` sorts first.  Failing one of the big
    app's elements plus the small app's element strands both, leaving
    two empty healthy elements (100 cycles each): the big app fits
    exactly (60 + 60), after which the small one (60) does not — and
    vice versa.
    """
    manager = Kairos(mesh(2, 2), validation_mode="skip")
    big_layout = manager.controller.admit(big_app(), "z_big").layout
    small_layout = manager.controller.admit(small_app(), "a_small").layout
    manager.state.fail_element(sorted(set(big_layout.placement.values()))[0])
    manager.state.fail_element(next(iter(small_layout.placement.values())))
    assert manager.stranded_by_faults() == ("a_small", "z_big")
    return manager


class TestRecoveryOrdering:
    def test_legacy_name_order_starves_the_big_app(self):
        report = starved_manager().recover(order="name")
        assert sorted(report.recovered) == ["a_small"]
        assert sorted(report.lost) == ["z_big"]

    def test_default_admission_order_recovers_the_big_app(self):
        # the regression fix: bare recover() now follows admission
        # order, so the first-admitted application is re-placed first
        report = starved_manager().recover()
        assert sorted(report.recovered) == ["z_big"]
        assert sorted(report.lost) == ["a_small"]

    def test_priority_order_recovers_the_high_priority_app(self):
        manager = starved_manager()
        engine = manager.controller.recovery_engine(
            RecoveryPolicy(order="priority", requeue=False)
        )
        engine.note_priority("a_small", 5)
        engine.note_priority("z_big", 1)
        outcome = engine.recovery_pass()
        assert sorted(outcome.recovered) == ["a_small"]
        assert sorted(outcome.lost) == ["z_big"]

    def test_size_order_recovers_the_large_app(self):
        manager = starved_manager()
        engine = manager.controller.recovery_engine(
            RecoveryPolicy(order="size", requeue=False)
        )
        outcome = engine.recovery_pass()
        assert sorted(outcome.recovered) == ["z_big"]

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(order="chaotic")
        with pytest.raises(ValueError):
            starved_manager().recover(order="chaotic")


# -- idempotency and crash consistency ---------------------------------------


class TestRecoveryIdempotency:
    def test_second_recover_is_a_no_op_at_unchanged_epoch(self):
        manager = starved_manager()
        first = manager.recover()
        assert first.stranded
        epoch = manager.state.epoch
        second = manager.recover()
        assert second.stranded == ()
        assert second.recovered == {} and second.lost == {}
        assert manager.state.epoch == epoch

    def test_fault_between_observation_and_recovery_never_corrupts(self):
        manager = Kairos(mesh(3, 3), validation_mode="skip")
        layouts = {}
        for index in range(4):
            app_id = f"app{index}"
            decision = manager.controller.admit(small_app(), app_id)
            layouts[app_id] = decision.layout
        hosts = {
            app_id: next(iter(layout.placement.values()))
            for app_id, layout in layouts.items()
        }
        manager.state.fail_element(hosts["app0"])
        observed = manager.stranded_by_faults()
        assert observed == ("app0",)
        # a second fault lands between the observation and the pass —
        # the engine recomputes strandedness per round, so app1 is
        # picked up instead of corrupting state
        manager.state.fail_element(hosts["app1"])
        outcome = manager.controller.recovery_engine(
            RecoveryPolicy(requeue=False)
        ).recovery_pass()
        assert set(outcome.stranded) >= {"app0", "app1"}
        assert manager.stranded_by_faults() == ()
        for app_id in list(manager.admitted):
            manager.release(app_id)
        assert manager.utilization() == 0.0


# -- the requeue -------------------------------------------------------------


def full_platform_manager():
    """Four single-task apps filling a 2x2 mesh completely."""
    manager = Kairos(mesh(2, 2), validation_mode="skip")
    hosts = {}
    for index in range(4):
        app_id = f"app{index}"
        layout = manager.controller.admit(small_app(), app_id).layout
        hosts[app_id] = next(iter(layout.placement.values()))
    return manager, hosts


class TestRequeue:
    def test_unplaceable_app_defers_instead_of_losing(self):
        manager, hosts = full_platform_manager()
        engine = manager.controller.recovery_engine()
        manager.state.fail_element(hosts["app0"])
        outcome = engine.recovery_pass(now=10.0)
        assert sorted(outcome.deferred) == ["app0"]
        assert outcome.lost == {}
        entry = engine.pending_entry("app0")
        assert entry.attempts == 1 and entry.deferred_at == 10.0

    def test_drain_is_epoch_guarded(self):
        manager, hosts = full_platform_manager()
        engine = manager.controller.recovery_engine()
        manager.state.fail_element(hosts["app0"])
        engine.recovery_pass(now=10.0)
        # nothing changed: the drain skips the entry for free
        assert engine.drain(now=11.0) == []
        assert engine.pending_entry("app0").attempts == 1

    def test_repair_lets_the_drain_recover(self):
        manager, hosts = full_platform_manager()
        engine = manager.controller.recovery_engine()
        manager.state.fail_element(hosts["app0"])
        engine.recovery_pass(now=10.0)
        manager.state.heal_element(hosts["app0"])
        results = engine.drain(now=15.0)
        assert [(r.app_id, r.outcome) for r in results] == [
            ("app0", "recovered")
        ]
        assert results[0].waited == 5.0
        assert engine.pending == ()
        assert "app0" in manager.admitted

    def test_retry_budget_exhausts_with_backoff_delays(self):
        manager, hosts = full_platform_manager()
        engine = manager.controller.recovery_engine(
            RecoveryPolicy(max_attempts=3, base_delay=2.0, backoff=2.0)
        )
        manager.state.fail_element(hosts["app0"])
        engine.recovery_pass(now=0.0)
        delays = []
        for now in (5.0, 10.0):
            # an epoch bump without freed capacity: the retry runs
            # and fails for real, burning budget
            manager.state.touch()
            (result,) = engine.drain(now=now)
            delays.append((result.outcome, result.delay))
        assert delays[0] == ("deferred", 2.0 * 2.0 ** 1)
        assert delays[1] == ("exhausted", None)
        assert engine.pending == ()

    def test_expire_and_flush_drop_entries(self):
        manager, hosts = full_platform_manager()
        engine = manager.controller.recovery_engine()
        manager.state.fail_element(hosts["app0"])
        engine.recovery_pass(now=0.0)
        entry = engine.expire("app0")
        assert entry is not None and engine.expire("app0") is None
        manager.state.fail_element(hosts["app1"])
        engine.recovery_pass(now=1.0)
        flushed = engine.flush()
        assert [e.app_id for e in flushed] == ["app1"]
        assert engine.pending == ()


# -- state.touch() -----------------------------------------------------------


class TestTouch:
    def test_touch_bumps_the_epoch(self, state3x3):
        before = state3x3.epoch
        state3x3.touch()
        assert state3x3.epoch == before + 1

    def test_touch_is_illegal_inside_a_transaction(self, state3x3):
        with pytest.raises(AllocationError):
            with state3x3.transaction():
                state3x3.touch()


# -- event ordering ----------------------------------------------------------


class TestEventOrdering:
    def test_equal_time_priorities(self):
        # repairs precede faults at the same instant (capacity returns
        # before the next blow lands), both precede arrivals, and
        # recovery retries run after ordinary retries
        assert (
            EventKind.DEPARTURE < EventKind.REPAIR < EventKind.FAULT
            < EventKind.ARRIVAL < EventKind.RETRY
            < EventKind.RECOVERY_RETRY < EventKind.TIMEOUT < EventKind.TICK
        )


# -- config plumbing ---------------------------------------------------------


class TestResilienceConfig:
    def test_from_spec_round_trips(self):
        config = ResilienceConfig(
            health=HealthPolicy(probation=7.0),
            recovery=RecoveryPolicy(order="size", max_attempts=3),
        )
        assert ResilienceConfig.from_spec(config.describe()) == config
        assert ResilienceConfig.from_spec(None) is None
        assert ResilienceConfig.from_spec(config) is config
        assert ResilienceConfig.from_spec({}) == ResilienceConfig()

    def test_legacy_recipes_carry_no_resilience_keys(self):
        recipe = build_recipe(duration=20.0, faults=2)
        assert set(recipe) & {
            "fault_mttr", "fault_links", "fault_storm", "resilience"
        } == set()

    def test_resilience_knobs_round_trip_through_the_recipe(self):
        recipe = build_recipe(
            duration=20.0, faults=2, fault_mttr=4.0, fault_links=0.5,
            fault_storm=1, resilience=ResilienceConfig(),
        )
        assert recipe["fault_mttr"] == 4.0
        assert recipe["fault_links"] == 0.5
        assert recipe["fault_storm"] == 1
        assert (
            ResilienceConfig.from_spec(recipe["resilience"])
            == ResilienceConfig()
        )
        with pytest.raises(ValueError):
            build_recipe(fault_mttr=-1.0)
        with pytest.raises(ValueError):
            build_recipe(fault_links=1.5)


# -- end-to-end service behaviour --------------------------------------------


class TestServiceResilience:
    def test_storm_run_repairs_quarantines_and_recovers(self):
        result = run_recipe(build_recipe(**STORM_RECIPE))
        summary = result.metrics.summary()["resilience"]
        assert summary["repairs_completed"] > 0
        assert summary["quarantines"] > 0
        assert summary["mttr"] == pytest.approx(5.0)
        assert 0.0 < summary["availability"] < 1.0
        assert result.post_drain_utilization == 0.0

    def test_lost_application_is_readmitted_through_the_requeue(self):
        result = run_recipe(build_recipe(**STORM_RECIPE))
        assert result.metrics.lost_recovered > 0
        retries_ok = [
            record for record in records_of(result.trace, "recovery_retry")
            if record["ok"]
        ]
        assert retries_ok, "no requeued application was re-admitted"
        # every successful retry was preceded by a recovery pass that
        # deferred that application (a later fault may strand a
        # re-admitted app again, so "lost afterwards" stays possible)
        for record in retries_ok:
            deferred_at = [
                pass_record["t"]
                for pass_record in records_of(result.trace, "recovery")
                if record["id"] in pass_record["deferred"]
            ]
            assert deferred_at and deferred_at[0] <= record["t"]

    def test_storm_trace_replays_bit_identically(self, tmp_path):
        path = tmp_path / "storm.jsonl"
        run_recipe(build_recipe(**STORM_RECIPE), trace_path=path)
        identical, differences, _ = replay_trace(path)
        assert identical, differences[:5]

    # profile-governed drain-to-zero property: randomized churn +
    # fault storm + repair always returns the platform to empty
    # (HYPOTHESIS_PROFILE=determinism sweeps ~500 seeds)
    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_drains_to_zero_under_churn_storm_repair(self, seed):
        recipe = build_recipe(**{**STORM_RECIPE, "seed": seed,
                                 "duration": 20.0})
        result = run_recipe(recipe)
        # run_simulation asserts post-drain utilization internally;
        # re-assert the invariant and the books here
        assert result.post_drain_utilization == 0.0
        metrics = result.metrics
        faults = metrics.summary()["faults"]
        assert faults["injected"] > 0
        assert metrics.lost_recovered <= metrics.recovery_retries

    def test_legacy_mode_emits_no_resilience_events(self):
        recipe = build_recipe(
            platform="6x6", duration=30.0, seed=3, policy="priority",
            rate_scale=8.0, pool_size=6, sample_interval=5.0, faults=2,
        )
        result = run_recipe(recipe)
        for kind in ("repair", "quarantine", "recovery_retry",
                     "recovery_lost"):
            assert records_of(result.trace, kind) == []
        summary = result.metrics.summary()["resilience"]
        assert summary["repairs_completed"] == 0
        assert summary["availability"] == 1.0
        assert summary["mttr"] is None

    def test_pre_resilience_fixture_replays_bit_identically(self):
        """Legacy permanent-fault traces recorded before this PR must
        replay byte-for-byte — digest-pinned, so even a reordered
        recovery would be caught."""
        path = FIXTURES / "pre_resilience_faults.jsonl"
        _header, records = read_trace(path)
        assert trace_digest(records) == (
            "084800d3b7979349606551c7ce927d1f"
            "1f0c166913b0930a352e2eabf6d7ef76"
        )
        identical, differences, result = replay_trace(path)
        assert identical, differences[:5]
        assert trace_digest(result.trace) == trace_digest(records)
