"""Tests for the analytical (maximum-cycle-ratio) throughput engine
and its agreement with the state-space simulation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import AllocationState, mesh
from repro.binding import bind
from repro.core import map_application
from repro.routing import BfsRouter
from repro.validation import (
    Actor,
    McrError,
    SdfGraph,
    analytical_throughput,
    analyze_throughput,
    layout_to_sdf,
    maximum_cycle_ratio,
    validate_layout,
)
from tests.conftest import chain_app, diamond_app


def ring(durations, tokens=1):
    graph = SdfGraph("ring")
    names = [f"a{i}" for i in range(len(durations))]
    for name, duration in zip(names, durations):
        graph.add_actor(Actor(name, duration))
    for i, name in enumerate(names):
        nxt = names[(i + 1) % len(names)]
        graph.connect(name, nxt,
                      initial_tokens=tokens if i == len(names) - 1 else 0)
    return graph


class TestMaximumCycleRatio:
    def test_ring_closed_form(self):
        # cycle sum 6, 1 token -> ratio 6; self-loops give max dur 3
        graph = ring([1.0, 2.0, 3.0], tokens=1)
        assert maximum_cycle_ratio(graph) == pytest.approx(6.0, rel=1e-6)

    def test_self_loop_binds_when_tokens_plenty(self):
        graph = ring([1.0, 2.0, 3.0], tokens=10)
        # cycle ratio 6/10 < slowest actor 3/1
        assert maximum_cycle_ratio(graph) == pytest.approx(3.0, rel=1e-6)

    def test_deadlock_is_infinite(self):
        graph = ring([1.0, 1.0], tokens=0)
        assert maximum_cycle_ratio(graph) == float("inf")
        rates = analytical_throughput(graph)
        assert all(rate == 0.0 for rate in rates.values())

    def test_empty_graph(self):
        assert maximum_cycle_ratio(SdfGraph("void")) == 0.0
        assert analytical_throughput(SdfGraph("void")) == {}

    def test_multirate_rejected(self):
        graph = SdfGraph("mr")
        graph.add_actor(Actor("a", 1.0))
        graph.add_actor(Actor("b", 1.0))
        graph.connect("a", "b", production=2)
        with pytest.raises(McrError):
            maximum_cycle_ratio(graph)

    def test_matches_simulation_on_rings(self):
        for durations, tokens in (
            ([1.0, 2.0], 1), ([0.5, 0.5, 4.0], 2), ([3.0], 1),
        ):
            graph = ring(durations, tokens)
            simulated = analyze_throughput(graph).of("a0")
            analytical = analytical_throughput(graph)["a0"]
            assert analytical == pytest.approx(simulated, rel=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    durations=st.lists(st.floats(min_value=0.1, max_value=4.0),
                       min_size=2, max_size=4),
    tokens=st.integers(1, 3),
)
def test_property_analytical_equals_simulation_on_rings(durations, tokens):
    graph = ring(durations, tokens=tokens)
    simulated = analyze_throughput(graph).of("a0")
    analytical = analytical_throughput(graph)["a0"]
    assert analytical == pytest.approx(simulated, rel=1e-6)


class TestOnLayouts:
    def build(self, app, state):
        binding = bind(app, state)
        mapping = map_application(app, binding.choice, state)
        routing = BfsRouter().route_application(app, mapping.placement, state)
        return binding, mapping, routing

    @pytest.mark.parametrize("app_factory", [
        lambda: chain_app(4), diamond_app,
    ], ids=["chain", "diamond"])
    def test_engines_agree_on_layout_graphs(self, app_factory):
        state = AllocationState(mesh(3, 3))
        app = app_factory()
        binding, mapping, routing = self.build(app, state)
        graph = layout_to_sdf(app, binding.choice, mapping.placement,
                              routing.routes, state)
        simulated = analyze_throughput(graph)
        analytical = analytical_throughput(graph)
        for actor in graph.actors:
            assert analytical[actor] == pytest.approx(
                simulated.of(actor), rel=1e-6,
            )

    def test_validate_layout_analytical_method(self, state3x3):
        app = chain_app(3)
        from repro.apps import ThroughputConstraint
        app.add_constraint(ThroughputConstraint(1e-6, reference_task="t2"))
        binding, mapping, routing = self.build(app, state3x3)
        report_sim = validate_layout(
            app, binding.choice, mapping.placement, routing.routes,
            state3x3, method="simulation",
        )
        # rebuild state-free: validate_layout only reads, safe to reuse
        report_ana = validate_layout(
            app, binding.choice, mapping.placement, routing.routes,
            state3x3, method="analytical",
        )
        assert report_sim.satisfied == report_ana.satisfied
        assert report_ana.checks[0].achieved == pytest.approx(
            report_sim.checks[0].achieved, rel=1e-6,
        )

    def test_unknown_method_rejected(self, state3x3):
        app = chain_app(2)
        binding, mapping, routing = self.build(app, state3x3)
        with pytest.raises(ValueError):
            validate_layout(app, binding.choice, mapping.placement,
                            routing.routes, state3x3, method="magic")

    def test_kairos_analytical_manager(self):
        from repro.manager import Kairos
        manager = Kairos(mesh(3, 3), validation_method="analytical")
        layout = manager.allocate(chain_app(3))
        assert layout.validation is not None
        assert not layout.validation.deadlocked
