"""The admission fast path: epochs, aggregates, memo, gate, scratch.

The fast path's entire contract is *make failure cheap without
changing a single decision*.  These tests pin both halves:

* capacity epochs move with every mutation and rewind bit-exactly on
  rollback; the aggregate free counters always equal a brute-force
  recomputation over the ledgers;
* the negative-result memo never serves a stale rejection — any
  capacity freed (vacate, heal, rollback-free interleavings) bumps the
  epoch and forces a fresh pipeline run;
* gated and ungated managers produce bit-identical layouts and
  decisions across seeded churn and service workloads, and the
  committed pre-fast-path service trace still replays bit-for-bit;
* the service-level epoch short-circuit fires without altering
  decisions, and per-phase latency histograms are recorded.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import Application, Task, dsp_implementation
from repro.arch import AllocationError, AllocationState, ResourceVector, mesh
from repro.arch.scratch import ScratchPool
from repro.experiments import ChurnConfig, churn_pool, run_admission_churn
from repro.manager import AllocationFailure, Kairos, Phase
from repro.sim import (
    FifoPolicy,
    RetryPolicy,
    SimulationConfig,
    default_traffic_classes,
    make_policy,
    replay_trace,
    run_simulation,
)

FIXTURES = Path(__file__).parent / "data"

REQ = ResourceVector(cycles=20, memory=4)


def brute_force_aggregates(state: AllocationState) -> tuple[dict, dict]:
    """Recompute the aggregate free counters from the public API."""
    total: dict = {}
    by_kind: dict = {}
    for element in state.platform.elements:
        if state.is_failed(element):
            continue
        bucket = by_kind.setdefault(element.kind, {})
        for kind, quantity in state.free(element).items():
            total[kind] = total.get(kind, 0) + quantity
            bucket[kind] = bucket.get(kind, 0) + quantity
    return total, by_kind


def assert_aggregates_exact(state: AllocationState) -> None:
    total, by_kind = brute_force_aggregates(state)
    live_total = state.aggregate_free()
    # the incremental counters may carry exact zeros; the brute force
    # never produces them — compare over the union of kinds
    for kind in set(total) | set(live_total):
        assert live_total.get(kind, 0) == total.get(kind, 0), kind
    live_kind = state.aggregate_free_by_kind()
    for element_kind in set(by_kind) | set(live_kind):
        expected = by_kind.get(element_kind, {})
        actual = live_kind.get(element_kind, {})
        for kind in set(expected) | set(actual):
            assert actual.get(kind, 0) == expected.get(kind, 0)


class TestEpochs:
    def test_every_mutation_bumps_the_epoch(self):
        state = AllocationState(mesh(3, 3))
        epoch = state.epoch
        state.occupy("dsp_0_0", "a", "t", REQ)
        assert state.epoch == epoch + 1
        state.reserve_route(
            "a", "c", ["dsp_0_0", "r_0_0", "r_0_1", "dsp_0_1"], 1.0
        )
        assert state.epoch == epoch + 2
        state.fail_element("dsp_2_2")
        assert state.epoch == epoch + 3
        state.heal_element("dsp_2_2")
        assert state.epoch == epoch + 4
        state.fail_link("r_0_0", "r_0_1")
        assert state.epoch == epoch + 5
        state.heal_link("r_0_0", "r_0_1")
        assert state.epoch == epoch + 6
        state.release_route("a", "c")
        assert state.epoch == epoch + 7
        state.vacate("a", "t")
        assert state.epoch == epoch + 8

    def test_rollback_restores_epoch_and_aggregates_bit_exactly(self):
        state = AllocationState(mesh(3, 3))
        state.occupy("dsp_0_0", "a", "t", REQ)
        state.fail_element("dsp_1_1")
        epoch = state.epoch
        total = state.aggregate_free()
        by_kind = state.aggregate_free_by_kind()

        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            with state.transaction():
                state.occupy("dsp_0_1", "a", "t2", REQ)
                state.vacate("a", "t")
                state.heal_element("dsp_1_1")
                state.fail_element("dsp_0_2")
                state.reserve_route(
                    "a", "c", ["dsp_0_1", "r_0_1", "r_0_0", "dsp_0_0"], 2.0
                )
                raise Boom()
        assert state.epoch == epoch
        assert state.aggregate_free() == total
        assert state.aggregate_free_by_kind() == by_kind
        assert_aggregates_exact(state)

    def test_savepoint_rewinds_epoch_partially(self):
        state = AllocationState(mesh(3, 3))
        with state.transaction():
            state.occupy("dsp_0_0", "a", "t0", REQ)
            inner = state.epoch
            mark = state.savepoint()
            state.occupy("dsp_0_1", "a", "t1", REQ)
            state.fail_element("dsp_2_0")
            state.rollback_to(mark)
            assert state.epoch == inner
        assert state.epoch == inner
        assert_aggregates_exact(state)

    def test_snapshot_restore_roundtrips_epoch_and_aggregates(self):
        state = AllocationState(mesh(3, 3))
        state.occupy("dsp_0_0", "a", "t", REQ)
        snapshot = state.snapshot()
        epoch = state.epoch
        state.occupy("dsp_0_1", "b", "t", REQ)
        state.fail_element("dsp_1_0")
        state.restore(snapshot)
        assert state.epoch == epoch
        assert_aggregates_exact(state)

    def test_vacate_on_failed_element_keeps_aggregates_consistent(self):
        state = AllocationState(mesh(3, 3))
        state.occupy("dsp_0_0", "a", "t", REQ)
        state.fail_element("dsp_0_0")
        assert_aggregates_exact(state)
        state.vacate("a", "t")  # stranded-task cleanup after a fault
        assert_aggregates_exact(state)
        state.heal_element("dsp_0_0")
        assert_aggregates_exact(state)

    def test_random_interleaving_keeps_aggregates_exact(self):
        rng = random.Random(9)
        platform = mesh(4, 4)
        state = AllocationState(platform)
        element_names = [e.name for e in platform.elements]
        placed: list[tuple[str, str]] = []
        counter = 0

        class Boom(RuntimeError):
            pass

        def random_mutation():
            nonlocal counter
            roll = rng.random()
            if roll < 0.45:
                counter += 1
                key = ("app", f"t{counter}")
                state.occupy(
                    rng.choice(element_names), key[0], key[1],
                    ResourceVector(
                        cycles=rng.randint(1, 30),
                        memory=rng.randint(1, 8),
                    ),
                )
                placed.append(key)
            elif roll < 0.7 and placed:
                app_id, task_id = placed.pop(rng.randrange(len(placed)))
                state.vacate(app_id, task_id)
            elif roll < 0.85:
                state.fail_element(rng.choice(element_names))
            else:
                state.heal_element(rng.choice(element_names))

        for _step in range(250):
            epoch_before = state.epoch
            total_before = state.aggregate_free()
            by_kind_before = state.aggregate_free_by_kind()
            rolled_back = False
            try:
                if rng.random() < 0.3:
                    with state.transaction():
                        for _ in range(rng.randint(1, 3)):
                            random_mutation()
                        if rng.random() < 0.6:
                            rolled_back = True
                            raise Boom()
                else:
                    random_mutation()
            except Boom:
                pass
            except AllocationError:
                pass
            if rolled_back:
                assert state.epoch == epoch_before
                assert state.aggregate_free() == total_before
                assert state.aggregate_free_by_kind() == by_kind_before
            assert_aggregates_exact(state)
        # placed bookkeeping may disagree after rollbacks; this loop
        # only asserts ledger/aggregate consistency, which is immune


class TestMemoAndGate:
    def _fill_until_rejection(self, manager, pool):
        admitted = []
        failed_app = None
        for index in range(300):
            app = pool[index % len(pool)]
            try:
                manager.allocate(app, f"fill{index}")
                admitted.append(f"fill{index}")
            except AllocationFailure:
                failed_app = app
                break
        assert failed_app is not None, "pool never filled the platform"
        return admitted, failed_app

    def test_identical_reprobe_is_served_from_the_memo(self):
        manager = Kairos(mesh(3, 3), validation_mode="skip")
        pool = churn_pool(count=6, seed=1)
        _admitted, failed_app = self._fill_until_rejection(manager, pool)
        hits = manager.fastpath_stats["memo_hits"]
        with pytest.raises(AllocationFailure) as first:
            manager.allocate(failed_app, "probe1")
        assert manager.fastpath_stats["memo_hits"] == hits + 1
        assert first.value.memoized
        with pytest.raises(AllocationFailure) as second:
            manager.allocate(failed_app, "probe2")
        assert second.value.phase is first.value.phase
        assert second.value.reason == first.value.reason

    def test_memo_never_serves_a_stale_rejection(self):
        manager = Kairos(mesh(3, 3), validation_mode="skip")
        pool = churn_pool(count=6, seed=1)
        admitted, failed_app = self._fill_until_rejection(manager, pool)
        with pytest.raises(AllocationFailure):
            manager.allocate(failed_app, "probe")
        # capacity freed -> epoch moved -> the pipeline must re-run
        for app_id in admitted:
            manager.release(app_id)
        layout = manager.allocate(failed_app, "retry")
        assert layout.placement  # admitted on the emptied platform

    def test_fault_and_heal_invalidate_the_memo(self):
        manager = Kairos(mesh(3, 3), validation_mode="skip")
        pool = churn_pool(count=6, seed=1)
        _admitted, failed_app = self._fill_until_rejection(manager, pool)
        with pytest.raises(AllocationFailure) as memoized:
            manager.allocate(failed_app, "p1")
        assert memoized.value.memoized
        manager.state.fail_element("dsp_0_0")
        with pytest.raises(AllocationFailure) as fresh:
            manager.allocate(failed_app, "p2")
        assert not fresh.value.memoized
        manager.state.heal_element("dsp_0_0")
        with pytest.raises(AllocationFailure) as after_heal:
            manager.allocate(failed_app, "p3")
        assert not after_heal.value.memoized

    def test_gate_rejects_aggregate_overdemand_like_the_binder(self):
        platform = mesh(2, 2)
        capacity = platform.elements[0].capacity["cycles"]
        per_task = int(capacity * 0.9)
        app = Application("overdemand")
        previous = None
        for index in range(len(platform.elements) + 1):
            task = Task(
                f"t{index}",
                (dsp_implementation(f"i{index}", cycles=per_task),),
            )
            app.add_task(task)
            if previous is not None:
                app.connect(previous, task.name)
            previous = task.name
        gated = Kairos(mesh(2, 2), validation_mode="skip", fastpath=True)
        ungated = Kairos(mesh(2, 2), validation_mode="skip", fastpath=False)
        with pytest.raises(AllocationFailure) as gated_exc:
            gated.allocate(app, "x")
        with pytest.raises(AllocationFailure) as ungated_exc:
            ungated.allocate(app, "x")
        assert gated_exc.value.gated
        assert gated_exc.value.reason.startswith("aggregate demand")
        assert gated_exc.value.phase is ungated_exc.value.phase is Phase.BINDING

    def test_gate_rejection_carries_timings_and_matches_binder_reason(self):
        app = Application("huge")
        # fits the aggregate (4 x 100 cycles) but no single element —
        # exercises the per-task layer, whose message is the binder's
        app.add_task(Task("t", (dsp_implementation("i", cycles=150),)))
        gated = Kairos(mesh(2, 2), validation_mode="skip", fastpath=True)
        ungated = Kairos(mesh(2, 2), validation_mode="skip", fastpath=False)
        with pytest.raises(AllocationFailure) as gated_exc:
            gated.allocate(app, "x")
        with pytest.raises(AllocationFailure) as ungated_exc:
            ungated.allocate(app, "x")
        assert gated_exc.value.gated
        # per-task gate rejections reproduce the binder's message
        assert gated_exc.value.reason == ungated_exc.value.reason
        recorded = dict(gated_exc.value.timings.recorded_items())
        assert set(recorded) == {"binding"}

    # profile-governed lockstep property test: the example budget
    # follows the Hypothesis profile registered in conftest.py
    # (HYPOTHESIS_PROFILE=determinism runs ~500 churn sequences)
    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_gated_and_ungated_managers_in_lockstep(self, seed):
        pool = churn_pool(count=8, seed=3)
        platform = mesh(5, 5)
        element_names = [e.name for e in platform.elements]
        gated = Kairos(platform, validation_mode="skip", fastpath=True)
        ungated = Kairos(platform, validation_mode="skip", fastpath=False)
        rng = random.Random(seed)
        resident: list[str] = []
        for step in range(70):
            roll = rng.random()
            if roll < 0.55 or not resident:
                app = pool[rng.randrange(len(pool))]
                app_id = f"s{seed}_a{step}"
                outcomes = []
                for manager in (gated, ungated):
                    try:
                        layout = manager.allocate(app, app_id)
                        outcomes.append((
                            "ok",
                            tuple(sorted(layout.placement.items())),
                            tuple(
                                (name, route.path) for name, route
                                in sorted(layout.routes.items())
                            ),
                        ))
                    except AllocationFailure as exc:
                        outcomes.append(("fail", exc.phase.value))
                assert outcomes[0] == outcomes[1], (seed, step)
                if outcomes[0][0] == "ok":
                    resident.append(app_id)
            elif roll < 0.85:
                app_id = resident.pop(rng.randrange(len(resident)))
                gated.release(app_id)
                ungated.release(app_id)
            elif roll < 0.93:
                element = rng.choice(element_names)
                gated.state.fail_element(element)
                ungated.state.fail_element(element)
            else:
                element = rng.choice(element_names)
                gated.state.heal_element(element)
                ungated.state.heal_element(element)
        snap_gated = gated.state.snapshot()
        snap_ungated = ungated.state.snapshot()
        assert snap_gated == snap_ungated
        gated.release_all()
        ungated.release_all()


class TestBitIdentity:
    def test_churn_identical_gated_vs_ungated(self):
        pool = churn_pool(count=10, seed=0)
        config = ChurnConfig(steps=60, target_utilization=0.8, seed=0)
        gated = run_admission_churn(pool, mesh(8, 8), config, fastpath=True)
        ungated = run_admission_churn(pool, mesh(8, 8), config, fastpath=False)
        assert gated.layouts == ungated.layouts
        assert (gated.admitted, gated.rejected, gated.released) == (
            ungated.admitted, ungated.rejected, ungated.released
        )

    @pytest.mark.parametrize("policy", ["reject", "fifo", "priority", "retry"])
    def test_service_traces_identical_gated_vs_ungated(self, policy):
        classes = default_traffic_classes(seed=2, rate_scale=6.0, pool_size=4)
        traces = []
        for fastpath in (True, False):
            result = run_simulation(
                mesh(6, 6), classes, make_policy(policy),
                SimulationConfig(duration=40.0, seed=3),
                fastpath=fastpath,
            )
            traces.append(result.trace)
        assert traces[0] == traces[1]

    def test_pre_fastpath_trace_replays_bit_identically(self):
        identical, differences, _result = replay_trace(
            FIXTURES / "pre_fastpath_fifo.jsonl"
        )
        assert identical, differences[:5]


class TestServiceFastPath:
    def test_short_circuit_fires_and_preserves_decisions(self):
        classes = default_traffic_classes(seed=5, rate_scale=8.0, pool_size=4)
        results = []
        for fastpath in (True, False):
            results.append(run_simulation(
                mesh(4, 4), classes,
                RetryPolicy(max_attempts=5, base_delay=0.2, backoff=1.5),
                SimulationConfig(duration=40.0, seed=5),
                fastpath=fastpath,
            ))
        # the short-circuit is policy-level: it fires with the manager
        # fast path on AND off, and decisions match in all cases
        assert results[0].trace == results[1].trace
        assert results[0].metrics.probes_short_circuited > 0
        assert results[1].metrics.probes_short_circuited > 0
        assert (
            results[0].metrics.probes_short_circuited
            == results[1].metrics.probes_short_circuited
        )

    def test_fifo_timeout_reprobe_short_circuits(self):
        classes = default_traffic_classes(seed=7, rate_scale=8.0, pool_size=4)
        result = run_simulation(
            mesh(4, 4), classes, FifoPolicy(capacity=12, timeout=2.5),
            SimulationConfig(duration=50.0, seed=7),
        )
        assert result.metrics.drops.get("timeout", 0) > 0
        assert result.metrics.probes_short_circuited > 0

    def test_phase_latency_histograms_recorded(self):
        classes = default_traffic_classes(seed=2, rate_scale=6.0, pool_size=4)
        result = run_simulation(
            mesh(5, 5), classes, make_policy("fifo"),
            SimulationConfig(duration=30.0, seed=2),
        )
        summary = result.metrics.summary()
        latency = summary["phase_latency"]
        assert latency["binding"]["count"] > 0
        assert latency["mapping"]["count"] > 0
        for row in latency.values():
            assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
            assert row["count"] > 0


class TestScratchPool:
    def test_stamped_arrays_invalidate_wholesale(self):
        pool = ScratchPool()
        data, stamp, generation = pool.stamped("x", 8)
        data[3] = 42
        stamp[3] = generation
        data2, stamp2, generation2 = pool.stamped("x", 8)
        assert data2 is data and stamp2 is stamp
        assert generation2 == generation + 1
        assert stamp2[3] != generation2  # cell 3 is stale again

    def test_stamped_arrays_grow(self):
        pool = ScratchPool()
        data, stamp, _gen = pool.stamped("x", 4)
        data2, stamp2, _gen2 = pool.stamped("x", 16)
        assert len(data2) >= 16 and len(stamp2) >= 16

    def test_zeroed_bytes_and_families_reset(self):
        pool = ScratchPool()
        mask = pool.zeroed_bytes("m", 6)
        mask[2] = 1
        again = pool.zeroed_bytes("m", 6)
        assert again is mask and again[2] == 0
        family = pool.zeroed_bytes_family("f", 3, 5)
        family[1][0] = 7
        family2 = pool.zeroed_bytes_family("f", 3, 5)
        assert family2[1][0] == 0

    def test_rows_reset_between_leases(self):
        pool = ScratchPool()
        pool.begin_rows()
        row = pool.row(5)
        row[0] = 3
        pool.begin_rows()
        row2 = pool.row(5)
        assert row2 is row and row2[0] == -1

    def test_cache_entries_from_rolled_back_epochs_never_survive(self):
        # a cache entry stamped at an *uncommitted* epoch observes state
        # that a rollback then erases; a later committed mutation
        # re-reaches the same epoch value with different state, and the
        # entry must not be served (epoch-collision hazard)
        platform = mesh(2, 2)
        state = AllocationState(platform)
        names = [e.name for e in platform.elements]
        impl = dsp_implementation("i", cycles=90)
        state.occupy(names[0], "a", "t0", ResourceVector(cycles=50))

        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            with state.transaction():
                state.occupy(names[1], "a", "t1", ResourceVector(cycles=50))
                count, first = state.availability.summary(impl)
                assert count == 2 and first.name == names[2]
                raise Boom()
        # committed mutation lands on the same epoch value as the
        # rolled-back one, but with a different element occupied
        state.occupy(names[2], "b", "t", ResourceVector(cycles=50))
        count, first = state.availability.summary(impl)
        assert count == 2 and first.name == names[1]

    def test_availability_cache_matches_naive_scan(self):
        platform = mesh(3, 3)
        state = AllocationState(platform)
        impl = dsp_implementation("i", cycles=90, memory=8)
        count, first = state.availability.summary(impl)
        assert count == 2 and first.name == "dsp_0_0"
        # shrink every element but one below the requirement
        for element in platform.elements[1:]:
            state.occupy(element, "a", f"t{element.name}",
                         ResourceVector(cycles=20))
        count, first = state.availability.summary(impl)
        assert count == 1 and first.name == "dsp_0_0"
        best, slack = state.availability.best_fit(impl)
        assert best.name == "dsp_0_0"
        assert 0.0 <= slack <= 1.0
        available = state.availability.available(impl)
        assert [e.name for e in available] == ["dsp_0_0"]
