"""Scenario matrices, sweep determinism, analyzer and report tests."""

from __future__ import annotations

import json

import pytest

from repro.scenarios import (
    ResultAnalyzer,
    ScenarioMatrix,
    canonical_payload,
    cluster_matrix,
    default_matrix,
    large_matrix,
    render_report,
    render_reports,
    run_cell,
    run_sweep,
    smoke_matrix,
    storm_matrix,
)


def tiny_matrix(**overrides) -> ScenarioMatrix:
    base = dict(
        name="tiny",
        topologies=("mesh:6x6", "torus:6x6"),
        traffic=("default", "hot_spot"),
        mappers=("kairos", "first_fit"),
        duration=6.0,
        rate_scale=2.0,
        sample_interval=2.0,
    )
    base.update(overrides)
    return ScenarioMatrix(**base)


class TestMatrix:
    def test_expansion_is_full_cross_product(self):
        matrix = tiny_matrix(fastpath=(True, False))
        cells = matrix.expand()
        assert len(cells) == 2 * 2 * 2 * 2
        assert len({cell.cell_id for cell in cells}) == len(cells)

    def test_expansion_order_deterministic(self):
        a = [cell.cell_id for cell in tiny_matrix().expand()]
        b = [cell.cell_id for cell in tiny_matrix().expand()]
        assert a == b
        # topology is the outermost axis
        assert a[0].startswith("mesh:6x6|")
        assert a[-1].startswith("torus:6x6|")

    def test_cell_seeds_differ_across_conditions(self):
        cells = tiny_matrix().expand()
        assert len({cell.seed for cell in cells}) == len(cells)

    def test_toggles_share_seed_and_recipe(self):
        matrix = tiny_matrix(
            topologies=("mesh:6x6",), traffic=("default",),
            mappers=("kairos",), fastpath=(True, False),
            incremental=(True, False),
        )
        cells = matrix.expand()
        assert len(cells) == 4
        assert len({cell.seed for cell in cells}) == 1
        assert all(cell.recipe == cells[0].recipe for cell in cells)

    def test_matrix_seed_changes_cell_seeds(self):
        a = tiny_matrix(seed=0).expand()
        b = tiny_matrix(seed=1).expand()
        assert all(x.seed != y.seed for x, y in zip(a, b))

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(ValueError):
            tiny_matrix(topologies=("ring:6x6",))
        with pytest.raises(ValueError):
            tiny_matrix(traffic=("nope",))
        with pytest.raises(ValueError):
            tiny_matrix(mappers=("bogus",))
        with pytest.raises(ValueError):
            tiny_matrix(topologies=())
        with pytest.raises(ValueError):
            tiny_matrix(duration=0.0)

    def test_fault_storm_condition_builds_storm_recipe(self):
        matrix = tiny_matrix(
            traffic=("fault_storm",), storm_epicenters=2, storm_radius=1,
        )
        cell = matrix.expand()[0]
        assert cell.recipe["faults"] == 2
        assert cell.recipe["fault_storm"] == 1
        assert cell.recipe["classes"]["kind"] == "default"

    def test_sharded_cells_use_cluster_recipes(self):
        matrix = tiny_matrix(
            topologies=("mesh:6x6",), traffic=("default",),
            mappers=("kairos",), shards=(1, 2),
        )
        single, sharded = matrix.expand()
        assert "shards" not in single.recipe
        assert sharded.recipe["shards"] == 2
        assert sharded.recipe["platform"] == "6x6"

    def test_sharded_constraints_enforced(self):
        with pytest.raises(ValueError, match="mesh"):
            tiny_matrix(
                topologies=("fat_tree:16",), mappers=("kairos",),
                shards=(2,),
            ).expand()
        with pytest.raises(ValueError, match="kairos"):
            tiny_matrix(
                topologies=("mesh:6x6",), mappers=("first_fit",),
                shards=(2,),
            ).expand()

    def test_duration_overrides_apply_per_topology(self):
        matrix = tiny_matrix(
            duration_overrides={"torus:6x6": 3.0},
        )
        by_topology = {
            cell.topology: cell.recipe["duration"]
            for cell in matrix.expand()
        }
        assert by_topology == {"mesh:6x6": 6.0, "torus:6x6": 3.0}

    def test_spec_round_trip(self):
        matrix = tiny_matrix(fastpath=(True, False))
        spec = json.loads(json.dumps(matrix.describe()))
        rebuilt = ScenarioMatrix.from_spec(spec)
        assert rebuilt == matrix
        assert [cell.cell_id for cell in rebuilt.expand()] == [
            cell.cell_id for cell in matrix.expand()
        ]

    def test_from_spec_rejects_unknown_keys(self):
        spec = tiny_matrix().describe()
        spec["typo"] = 1
        with pytest.raises(ValueError, match="typo"):
            ScenarioMatrix.from_spec(spec)

    def test_presets_expand(self):
        for preset in (smoke_matrix, default_matrix, storm_matrix,
                       large_matrix, cluster_matrix):
            cells = preset().expand()
            assert cells
            assert len({cell.cell_id for cell in cells}) == len(cells)


class TestSweepDeterminism:
    @pytest.fixture(scope="class")
    def matrix(self):
        return ScenarioMatrix(
            name="determinism",
            topologies=("mesh:6x6", "fat_tree:16"),
            traffic=("default", "hot_spot"),
            mappers=("kairos", "first_fit"),
            duration=6.0,
            rate_scale=2.0,
            sample_interval=2.0,
        )

    @pytest.fixture(scope="class")
    def serial_report(self, matrix):
        return run_sweep(matrix, jobs=1)

    def test_parallel_equals_serial(self, matrix, serial_report):
        pooled = run_sweep(matrix, jobs=2)
        assert canonical_payload(serial_report) == canonical_payload(
            pooled
        )

    def test_same_seed_byte_identical(self, matrix, serial_report):
        again = run_sweep(matrix, jobs=1)
        assert canonical_payload(serial_report) == canonical_payload(
            again
        )

    def test_different_seed_differs(self, matrix, serial_report):
        reseeded = ScenarioMatrix.from_spec(
            {**matrix.describe(), "seed": 99}
        )
        other = run_sweep(reseeded, jobs=1)
        assert canonical_payload(serial_report) != canonical_payload(
            other
        )

    def test_canonical_payload_strips_wall_clock(self, serial_report):
        payload = canonical_payload(serial_report)
        assert "wall_seconds" not in payload
        assert "events_per_second" not in payload
        assert "environment" not in payload

    def test_cells_report_decisions_and_timing(self, serial_report):
        for cell in serial_report["cells"]:
            decisions = cell["decisions"]
            assert decisions["offered"] >= decisions["admitted"]
            assert 0.0 <= decisions["blocking_probability"] <= 1.0
            assert decisions["trace_digest"]
            assert cell["timing"]["wall_seconds"] > 0.0

    def test_sharded_cells_run_through_cluster(self):
        matrix = ScenarioMatrix(
            name="shards",
            topologies=("mesh:6x6",),
            traffic=("default",),
            shards=(1, 2),
            duration=6.0,
            rate_scale=2.0,
        )
        report = run_sweep(matrix, jobs=1)
        pooled = run_sweep(matrix, jobs=2)
        assert canonical_payload(report) == canonical_payload(pooled)

    def test_run_cell_is_self_contained(self, matrix):
        cell = matrix.expand()[0]
        first = run_cell(cell.payload())
        second = run_cell(cell.payload())
        assert first["decisions"] == second["decisions"]


def fake_cell(topology="mesh:6x6", traffic="default", mapper="kairos",
              fastpath=True, incremental=True, shards=1, goodput=1.0,
              blocking=0.1, wall=1.0, digest="d0", distfield=None):
    cell_id = (
        f"{topology}|{traffic}|{mapper}|fp{int(fastpath)}"
        f"|inc{int(incremental)}|sh{shards}"
    )
    return {
        "cell_id": cell_id,
        "axes": {
            "topology": topology, "traffic": traffic, "mapper": mapper,
            "fastpath": fastpath, "incremental": incremental,
            "shards": shards,
        },
        "seed": 1,
        "decisions": {
            "offered": 10, "admitted": 8, "departed": 6, "dropped": 2,
            "drops_by_reason": {}, "rejections_by_phase": {},
            "blocking_probability": blocking,
            "admission_wait": {"p50": 0.1, "p95": 0.5, "p99": 0.9},
            "per_class": {}, "goodput": goodput,
            "mean_utilization": 0.5, "peak_queue_depth": 3,
            "faults": {"injected": 0, "recovered": 0, "lost": 0},
            "events_processed": 100, "fastpath_stats": None,
            "distfield_stats": distfield, "trace_digest": digest,
        },
        "timing": {
            "wall_seconds": wall, "events_per_second": 100.0,
            "phase_total_ms": 10.0, "mapping_share": 0.6,
        },
    }


class TestAnalyzer:
    def test_per_condition_groups_by_axis(self):
        cells = [
            fake_cell(mapper="kairos", goodput=2.0),
            fake_cell(mapper="first_fit", goodput=1.0),
            fake_cell(mapper="kairos", traffic="hot_spot", goodput=4.0),
        ]
        table = ResultAnalyzer(cells).per_condition("mapper")
        assert table["kairos"]["goodput"]["count"] == 2
        assert table["kairos"]["goodput"]["mean"] == pytest.approx(3.0)
        assert table["first_fit"]["goodput"]["mean"] == pytest.approx(1.0)

    def test_condition_tables_skip_constant_axes(self):
        cells = [
            fake_cell(mapper="kairos"), fake_cell(mapper="first_fit"),
        ]
        tables = ResultAnalyzer(cells).condition_tables()
        assert "mapper" in tables
        assert "topology" not in tables

    def test_best_strategy_ranks_by_goodput_then_blocking(self):
        cells = [
            fake_cell(mapper="kairos", goodput=2.0, blocking=0.2),
            fake_cell(mapper="first_fit", goodput=2.0, blocking=0.1),
            fake_cell(mapper="random", goodput=1.0, blocking=0.0),
        ]
        table = ResultAnalyzer(cells).best_strategy()
        row = table["mesh:6x6|default"]
        assert row["mapper"] == "first_fit"
        assert row["runner_up"] == "kairos"
        assert row["margin"] == pytest.approx(0.0)

    def test_best_strategy_ignores_degraded_cells(self):
        cells = [
            fake_cell(mapper="kairos", fastpath=False, goodput=9.0),
            fake_cell(mapper="kairos", goodput=1.0),
            fake_cell(mapper="random", goodput=2.0),
        ]
        table = ResultAnalyzer(cells).best_strategy()
        assert table["mesh:6x6|default"]["mapper"] == "random"

    def test_speedup_table_pairs_toggles(self):
        cells = [
            fake_cell(incremental=True, wall=1.0, digest="same"),
            fake_cell(incremental=False, wall=2.0, digest="same"),
        ]
        table = ResultAnalyzer(cells).speedup_table("incremental")
        row = next(iter(table.values()))
        assert row["speedup"] == pytest.approx(2.0)
        assert row["decisions_identical"] is True

    def test_speedup_table_flags_decision_divergence(self):
        cells = [
            fake_cell(fastpath=True, digest="a"),
            fake_cell(fastpath=False, digest="b"),
        ]
        table = ResultAnalyzer(cells).speedup_table("fastpath")
        row = next(iter(table.values()))
        assert row["decisions_identical"] is False

    def test_distfield_summary_rates(self):
        cells = [
            fake_cell(distfield={
                "hits": 3, "misses": 1, "repairs": 2,
                "rings_reused": 4, "rings_recomputed": 4,
            }),
            fake_cell(
                traffic="hot_spot",
                distfield={
                    "hits": 1, "misses": 3, "repairs": 0,
                    "rings_reused": 0, "rings_recomputed": 0,
                },
            ),
            fake_cell(incremental=False,
                      distfield={"hits": 99, "misses": 0}),
        ]
        summary = ResultAnalyzer(cells).distfield_summary()
        row = summary["mesh:6x6"]
        # the incremental-off cell is excluded
        assert row["hits"] == 4 and row["misses"] == 4
        assert row["hit_rate"] == pytest.approx(0.5)
        assert row["ring_reuse_rate"] == pytest.approx(0.5)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            ResultAnalyzer([]).per_condition("colour")
        with pytest.raises(ValueError):
            ResultAnalyzer([]).speedup_table("mapper")


class TestReport:
    def test_render_contains_tables(self):
        matrix = tiny_matrix(
            topologies=("mesh:6x6",), traffic=("default",),
            duration=4.0,
        )
        report = run_sweep(matrix, jobs=1)
        document = render_report(report)
        assert "## Matrix `tiny`" in document
        assert "### By mapper" in document
        assert "### Cells" in document
        assert "mesh:6x6|default|kairos|fp1|inc1|sh1" in document

    def test_render_reports_bundles_matrices(self):
        matrix = tiny_matrix(
            topologies=("mesh:6x6",), traffic=("default",),
            mappers=("kairos",), duration=4.0,
        )
        report = run_sweep(matrix, jobs=1)
        document = render_reports([report, report], "Sweep title")
        assert document.startswith("# Sweep title")
        assert document.count("## Matrix `tiny`") == 2
