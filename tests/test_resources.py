"""Unit and property tests for the resource-vector algebra."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.resources import (
    ZERO,
    ResourceError,
    ResourceVector,
    fraction_of,
    vector_sum,
)

KINDS = ("cycles", "memory", "io", "fabric")


def vectors(max_value: int = 100):
    return st.builds(
        ResourceVector,
        st.dictionaries(
            st.sampled_from(KINDS),
            st.integers(min_value=0, max_value=max_value),
            max_size=len(KINDS),
        ),
    )


class TestConstruction:
    def test_kwargs_and_mapping_agree(self):
        assert ResourceVector(cycles=3) == ResourceVector({"cycles": 3})

    def test_zero_components_are_dropped(self):
        vector = ResourceVector(cycles=0, memory=5)
        assert "cycles" not in vector
        assert len(vector) == 1

    def test_negative_quantity_rejected(self):
        with pytest.raises(ResourceError):
            ResourceVector(cycles=-1)

    def test_missing_kind_reads_zero(self):
        assert ResourceVector(memory=4)["cycles"] == 0

    def test_immutable(self):
        vector = ResourceVector(cycles=1)
        with pytest.raises(AttributeError):
            vector.x = 1

    def test_hashable_and_eq(self):
        assert hash(ResourceVector(cycles=1)) == hash(ResourceVector(cycles=1))
        assert ResourceVector(cycles=1) != ResourceVector(cycles=2)

    def test_eq_against_plain_mapping(self):
        assert ResourceVector(cycles=1) == {"cycles": 1}
        assert ResourceVector() == {"memory": 0}


class TestAlgebra:
    def test_add(self):
        total = ResourceVector(cycles=1, memory=2) + ResourceVector(cycles=3)
        assert total == ResourceVector(cycles=4, memory=2)

    def test_sub(self):
        left = ResourceVector(cycles=5, memory=5)
        assert left - ResourceVector(cycles=2) == ResourceVector(cycles=3, memory=5)

    def test_sub_underflow_raises(self):
        with pytest.raises(ResourceError):
            ResourceVector(cycles=1) - ResourceVector(cycles=2)

    def test_sub_unknown_kind_raises(self):
        with pytest.raises(ResourceError):
            ResourceVector(cycles=1) - ResourceVector(memory=1)

    def test_scalar_multiplication(self):
        assert 2 * ResourceVector(cycles=3) == ResourceVector(cycles=6)
        assert ResourceVector(cycles=3) * 0 == ZERO

    def test_negative_scale_rejected(self):
        with pytest.raises(ResourceError):
            ResourceVector(cycles=1) * -1

    def test_vector_sum(self):
        vectors_list = [ResourceVector(cycles=1)] * 3
        assert vector_sum(vectors_list) == ResourceVector(cycles=3)
        assert vector_sum([]) == ZERO


class TestFits:
    def test_fits_in_superset(self):
        assert ResourceVector(cycles=2).fits_in(ResourceVector(cycles=2, io=1))

    def test_does_not_fit_when_any_kind_exceeds(self):
        need = ResourceVector(cycles=2, memory=9)
        have = ResourceVector(cycles=5, memory=8)
        assert not need.fits_in(have)

    def test_zero_fits_everywhere(self):
        assert ZERO.fits_in(ZERO)
        assert ZERO.fits_in(ResourceVector(cycles=1))

    def test_dominates_is_inverse_of_fits(self):
        big = ResourceVector(cycles=5, memory=5)
        small = ResourceVector(cycles=2)
        assert big.dominates(small)
        assert not small.dominates(big)


class TestBottleneck:
    def test_plain_ratio(self):
        need = ResourceVector(cycles=50)
        have = ResourceVector(cycles=100)
        assert need.bottleneck(have) == 0.5

    def test_worst_dimension_wins(self):
        need = ResourceVector(cycles=10, memory=30)
        have = ResourceVector(cycles=100, memory=40)
        assert need.bottleneck(have) == 0.75

    def test_missing_capacity_is_infinite(self):
        assert ResourceVector(io=1).bottleneck(ResourceVector(cycles=9)) == float("inf")

    def test_empty_requirement_is_zero(self):
        assert ZERO.bottleneck(ResourceVector(cycles=1)) == 0.0


class TestFractionOf:
    def test_integral_rounds_down_but_never_to_zero(self):
        capacity = ResourceVector(cycles=100, memory=3)
        need = fraction_of(capacity, 0.1)
        assert need["cycles"] == 10
        assert need["memory"] == 1  # 0.3 rounds down, floor at 1

    def test_full_fraction_is_capacity(self):
        capacity = ResourceVector(cycles=100, memory=32)
        assert fraction_of(capacity, 1.0) == capacity

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(ResourceError):
            fraction_of(ResourceVector(cycles=1), 0.0)
        with pytest.raises(ResourceError):
            fraction_of(ResourceVector(cycles=1), 1.5)


class TestProperties:
    @given(vectors(), vectors())
    def test_add_commutes(self, a, b):
        assert a + b == b + a

    @given(vectors(), vectors(), vectors())
    def test_add_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(vectors())
    def test_zero_is_identity(self, a):
        assert a + ZERO == a

    @given(vectors(), vectors())
    def test_sub_inverts_add(self, a, b):
        assert (a + b) - b == a

    @given(vectors(), vectors())
    def test_fits_iff_sub_succeeds(self, a, b):
        fits = a.fits_in(b)
        try:
            b - a
            subtracted = True
        except ResourceError:
            subtracted = False
        assert fits == subtracted

    @given(vectors(), vectors())
    def test_sum_dominates_parts(self, a, b):
        assert a.fits_in(a + b)
        assert b.fits_in(a + b)

    @given(vectors())
    def test_total_nonnegative(self, a):
        assert a.total() >= 0

    @given(vectors(max_value=50), st.floats(min_value=0.01, max_value=1.0))
    def test_fraction_of_fits_unless_floored(self, capacity, fraction):
        need = fraction_of(capacity, fraction)
        # the floor-at-1 rule can exceed tiny capacities only when the
        # capacity component is fractional; with integers it never does
        assert need.fits_in(capacity)
