"""Tests for the baseline mappers and the optimality comparison."""

from __future__ import annotations

import pytest

from repro.arch import AllocationState, mesh
from repro.baselines import (
    InstanceTooLargeError,
    communication_distance,
    first_fit_map,
    optimal_map,
    random_map,
)
from repro.binding import bind
from repro.core import BOTH, MappingCost, MappingError, map_application
from tests.conftest import chain_app, diamond_app


class TestFirstFit:
    def test_places_all_tasks(self, state3x3):
        app = diamond_app()
        binding = bind(app, state3x3)
        result = first_fit_map(app, binding.choice, state3x3)
        assert set(result.placement) == set(app.tasks)

    def test_respects_capacity(self, state3x3):
        app = chain_app(5, cycles=60)
        binding = bind(app, state3x3)
        first_fit_map(app, binding.choice, state3x3)
        for element in state3x3.platform.elements:
            assert state3x3.free(element)["cycles"] >= 0

    def test_fails_when_full(self):
        state = AllocationState(mesh(1, 1))
        app = chain_app(2, cycles=60)
        binding = {t: app.task(t).implementations[0] for t in app.tasks}
        with pytest.raises(MappingError):
            first_fit_map(app, binding, state)

    def test_scan_order_packs_first_elements(self, state3x3):
        app = chain_app(2, cycles=30)
        binding = bind(app, state3x3)
        result = first_fit_map(app, binding.choice, state3x3)
        # both fit on the first declared element
        assert set(result.placement.values()) == {"dsp_0_0"}


class TestRandomMap:
    def test_places_all_tasks(self, state3x3):
        app = diamond_app()
        binding = bind(app, state3x3)
        result = random_map(app, binding.choice, state3x3, seed=1)
        assert set(result.placement) == set(app.tasks)

    def test_deterministic_per_seed(self):
        app = diamond_app()
        placements = []
        for _ in range(2):
            state = AllocationState(mesh(3, 3))
            binding = bind(app, state)
            placements.append(
                random_map(app, binding.choice, state, seed=7).placement
            )
        assert placements[0] == placements[1]

    def test_seeds_differ(self):
        app = diamond_app()
        results = []
        for seed in (1, 2, 3, 4):
            state = AllocationState(mesh(3, 3))
            binding = bind(app, state)
            results.append(
                tuple(sorted(
                    random_map(app, binding.choice, state, seed=seed)
                    .placement.items()
                ))
            )
        assert len(set(results)) > 1


class TestOptimal:
    def test_chain_on_line_is_contiguous(self):
        from repro.arch import mesh as make_mesh
        platform = make_mesh(1, 4)
        state = AllocationState(platform)
        app = chain_app(4, cycles=60)
        binding = bind(app, state)
        result = optimal_map(app, binding.choice, state)
        # optimal total distance for a 4-chain on a line: 3 channels x 3
        # hops (element-router-router-element between adjacent tiles)
        assert result.cost == 3 * 3

    def test_matches_brute_force_objective(self, state3x3):
        app = diamond_app()
        binding = bind(app, state3x3)
        result = optimal_map(app, binding.choice, state3x3)
        check = communication_distance(app, result.placement, state3x3)
        assert check == pytest.approx(result.cost)

    def test_does_not_mutate_state(self, state3x3):
        app = diamond_app()
        binding = bind(app, state3x3)
        before = state3x3.snapshot()
        optimal_map(app, binding.choice, state3x3)
        assert state3x3.snapshot() == before

    def test_instance_budget(self, state3x3):
        app = chain_app(9, cycles=10)
        binding = bind(app, state3x3)
        with pytest.raises(InstanceTooLargeError):
            optimal_map(app, binding.choice, state3x3, max_combinations=10)

    def test_infeasible_instance_rejected(self):
        state = AllocationState(mesh(1, 1))
        app = chain_app(2, cycles=60)
        binding = {t: app.task(t).implementations[0] for t in app.tasks}
        with pytest.raises(ValueError):
            optimal_map(app, binding, state)


class TestHeuristicQuality:
    def test_heuristic_close_to_optimal_on_small_instances(self):
        """The incremental mapper's communication distance should be
        within 2x of optimal on small instances (it typically matches)."""
        gaps = []
        for app_factory in (lambda: chain_app(4, cycles=60), diamond_app):
            app = app_factory()
            state = AllocationState(mesh(3, 3))
            binding = bind(app, state)
            optimal = optimal_map(app, binding.choice, state)
            state_h = AllocationState(mesh(3, 3))
            result = map_application(
                app, binding.choice, state_h, cost=MappingCost(BOTH)
            )
            achieved = communication_distance(app, result.placement, state_h)
            gaps.append((achieved, optimal.cost))
        for achieved, best in gaps:
            assert achieved <= 2 * best

    def test_heuristic_beats_random_on_average(self):
        """Locality awareness must beat random placement on total
        communication distance (averaged over seeds)."""
        app = chain_app(5, cycles=60)
        heuristic_state = AllocationState(mesh(4, 4))
        binding = bind(app, heuristic_state)
        result = map_application(app, binding.choice, heuristic_state,
                                 cost=MappingCost(BOTH))
        heuristic_cost = communication_distance(
            app, result.placement, heuristic_state
        )
        random_costs = []
        for seed in range(8):
            state = AllocationState(mesh(4, 4))
            placement = random_map(app, binding.choice, state,
                                   seed=seed).placement
            random_costs.append(
                communication_distance(app, placement, state)
            )
        assert heuristic_cost < sum(random_costs) / len(random_costs)
