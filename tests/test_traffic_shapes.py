"""Named traffic shapes: registry, determinism, recipe round-trips."""

from __future__ import annotations

from random import Random

import pytest

from repro.sim import (
    TRAFFIC_SHAPES,
    MMPPProcess,
    SimulationConfig,
    build_recipe,
    default_traffic_classes,
    diurnal_mmpp_classes,
    flash_crowd_classes,
    hot_spot_classes,
    make_policy,
    make_traffic_classes,
    run_recipe,
    run_simulation,
    trace_digest,
)
from repro.sim.service import platform_from_spec


class TestRegistry:
    def test_all_shapes_registered(self):
        assert sorted(TRAFFIC_SHAPES) == [
            "default", "diurnal_mmpp", "flash_crowd", "hot_spot",
        ]

    def test_make_resolves_each_shape(self):
        for shape in TRAFFIC_SHAPES:
            classes = make_traffic_classes(shape, seed=1, rate_scale=2.0)
            assert classes
            names = [cls.name for cls in classes]
            assert len(set(names)) == len(names)

    def test_unknown_shape_lists_registry(self):
        with pytest.raises(ValueError, match="hot_spot"):
            make_traffic_classes("nope")

    def test_params_forwarded(self):
        hot, background = make_traffic_classes(
            "hot_spot", rate_scale=1.0, hot_share=0.5
        )
        assert hot.arrivals.rate == pytest.approx(
            background.arrivals.rate
        )

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            hot_spot_classes(hot_share=1.5)
        with pytest.raises(ValueError):
            diurnal_mmpp_classes(night_fraction=0.0)
        with pytest.raises(ValueError):
            flash_crowd_classes(surge=-1.0)


class TestShapes:
    def test_hot_spot_total_rate_matches_default_mix(self):
        classes = hot_spot_classes(rate_scale=3.0)
        total = sum(cls.arrivals.mean_rate() for cls in classes)
        # 1.92/unit at rate_scale=1: the default mix's stationary total
        assert total == pytest.approx(1.92 * 3.0)

    def test_hot_spot_share_split(self):
        hot, background = hot_spot_classes(rate_scale=1.0, hot_share=0.8)
        assert hot.name == "hot" and background.name == "background"
        assert hot.arrivals.rate == pytest.approx(
            4 * background.arrivals.rate
        )
        assert hot.priority > background.priority

    def test_diurnal_classes_are_mmpp(self):
        classes = diurnal_mmpp_classes(night_fraction=0.25)
        assert all(
            isinstance(cls.arrivals, MMPPProcess) for cls in classes
        )
        for cls in classes:
            (busy, _), (calm, _) = cls.arrivals.phases
            assert calm == pytest.approx(busy * 0.25)

    def test_flash_crowd_is_scaled_default_mix(self):
        surged = flash_crowd_classes(seed=5, rate_scale=1.5, surge=4.0)
        scaled = default_traffic_classes(seed=5, rate_scale=6.0)
        for a, b in zip(surged, scaled):
            assert a.name == b.name
            assert a.arrivals.mean_rate() == pytest.approx(
                b.arrivals.mean_rate()
            )

    def test_shape_pools_deterministic(self):
        for shape in TRAFFIC_SHAPES:
            a = make_traffic_classes(shape, seed=9)
            b = make_traffic_classes(shape, seed=9)
            for cls_a, cls_b in zip(a, b):
                assert [app.name for app in cls_a.pool] == [
                    app.name for app in cls_b.pool
                ]

    def test_arrival_streams_deterministic(self):
        for shape in TRAFFIC_SHAPES:
            draws = []
            for _ in range(2):
                classes = make_traffic_classes(shape, seed=4)
                rng = Random(42)
                for cls in classes:
                    reset = getattr(cls.arrivals, "reset", None)
                    if reset is not None:
                        reset()
                draws.append([
                    cls.arrivals.next_interarrival(rng)
                    for cls in classes for _ in range(5)
                ])
            assert draws[0] == draws[1]


class TestRecipes:
    def test_recipe_round_trip_per_shape(self):
        for shape in TRAFFIC_SHAPES:
            recipe = build_recipe(
                platform="6x6", duration=8.0, seed=3, traffic=shape,
            )
            assert recipe["classes"]["kind"] == shape
            first = run_recipe(recipe)
            second = run_recipe(recipe)
            assert trace_digest(first.trace) == trace_digest(second.trace)

    def test_traffic_params_serialized_and_applied(self):
        recipe = build_recipe(
            platform="6x6", duration=8.0, seed=3,
            traffic="hot_spot", traffic_params={"hot_share": 0.6},
        )
        assert recipe["classes"]["params"] == {"hot_share": 0.6}
        result = run_recipe(recipe)
        assert set(result.metrics.per_class) <= {"hot", "background"}

    def test_default_recipe_stanza_unchanged(self):
        recipe = build_recipe(platform="6x6", duration=8.0, seed=3)
        assert recipe["classes"] == {
            "kind": "default", "seed": 3,
            "rate_scale": 1.0, "pool_size": 8,
        }
        assert "params" not in recipe["classes"]

    def test_bad_shape_rejected_at_build_time(self):
        with pytest.raises(ValueError):
            build_recipe(traffic="nope")
        with pytest.raises(TypeError):
            build_recipe(traffic="hot_spot",
                         traffic_params={"bogus": 1})

    def test_flash_crowd_recipe_matches_scaled_default(self):
        surged = build_recipe(
            platform="6x6", duration=10.0, seed=0, rate_scale=2.0,
            traffic="flash_crowd", traffic_params={"surge": 3.0},
        )
        scaled = build_recipe(
            platform="6x6", duration=10.0, seed=0, rate_scale=6.0,
        )
        assert trace_digest(run_recipe(surged).trace) == trace_digest(
            run_recipe(scaled).trace
        )


class TestMapperAxis:
    def test_mapper_key_emitted_only_when_set(self):
        plain = build_recipe(platform="6x6", duration=5.0)
        assert "mapper" not in plain
        swapped = build_recipe(
            platform="6x6", duration=5.0, mapper="first_fit"
        )
        assert swapped["mapper"] == "first_fit"

    def test_unknown_mapper_rejected(self):
        with pytest.raises(ValueError):
            build_recipe(mapper="bogus")

    def test_mappers_change_decisions(self):
        digests = {}
        for mapper in ("kairos", "first_fit", "random"):
            recipe = build_recipe(
                platform="6x6", duration=10.0, seed=1,
                rate_scale=2.0, mapper=mapper,
            )
            digests[mapper] = trace_digest(run_recipe(recipe).trace)
        assert len(set(digests.values())) == len(digests)

    def test_run_simulation_mapper_kwarg(self):
        platform = platform_from_spec("4x4")
        result = run_simulation(
            platform,
            make_traffic_classes("default", seed=0, rate_scale=2.0),
            make_policy("fifo", {}),
            SimulationConfig(duration=5.0, seed=0),
            mapper="random",
            mapper_params={"seed": 3},
        )
        assert result.metrics.offered > 0
