"""The repro.api façade: plan/commit soundness, strategy registry,
reason codes, and the Kairos.allocate deprecation shim.

The heart of this file is the plan/commit contract of ISSUE 5:

* ``plan(app)`` holds no resources after returning — journal fully
  unwound, capacity epoch restored, free ledgers bit-identical;
* ``commit(plan)`` at an unchanged epoch reproduces the direct
  admission bit-identically (placements, routes, epochs);
* a plan built at epoch E **replans** (never corrupts state) when a
  concurrent admit/release/fault moves the epoch before commit;
* the four baseline mappers run through the ``PhasePipeline``
  registry and match their direct invocations;
* ``Kairos.allocate`` emits exactly one DeprecationWarning per call
  and stays lockstep-identical with plan+commit over random churn
  (digests asserted against the frozen seed reference).
"""

from __future__ import annotations

import random
import sys
import warnings
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.api import (
    AdmissionController,
    PhasePipeline,
    ReasonCode,
    available_strategies,
    register_mapper,
)
from repro.api.pipeline import _MAPPERS
from repro.apps import GeneratorConfig, generate
from repro.arch import mesh
from repro.baselines import first_fit_map, optimal_map, random_map
from repro.binding import bind
from repro.experiments import ChurnConfig, churn_pool, run_admission_churn
from repro.manager import AllocationFailure, Kairos, Phase


def app_of(seed, internals=3, name=None):
    return generate(
        GeneratorConfig(inputs=1, internals=internals, outputs=1),
        seed=seed, name=name or f"app{seed}",
    )


def fresh_controller(rows=4, cols=4, **kwargs):
    kwargs.setdefault("validation_mode", "skip")
    return AdmissionController(mesh(rows, cols), **kwargs)


def state_fingerprint(state):
    """Cheap structural digest of the allocation ledgers."""
    platform = state.platform
    return (
        state.epoch,
        tuple(
            tuple(sorted(state.free(element)._data.items()))
            for element in platform.elements
        ),
        state.utilization(),
        tuple(sorted(state.applications())),
    )


def layout_digest(layout):
    return (
        tuple(sorted(layout.placement.items())),
        tuple(
            (name, route.path)
            for name, route in sorted(layout.routes.items())
        ),
        tuple(sorted(layout.local_channels)),
    )


# ---------------------------------------------------------------------------
# plan(): no resources held
# ---------------------------------------------------------------------------


class TestPlan:
    def test_plan_holds_nothing(self):
        controller = fresh_controller()
        before = state_fingerprint(controller.state)
        plan = controller.plan(app_of(1))
        assert plan.ok
        assert plan.epoch == before[0]
        assert state_fingerprint(controller.state) == before
        assert controller.admitted == {}
        assert controller.manager.utilization() == 0.0

    def test_failed_plan_holds_nothing(self):
        controller = fresh_controller(2, 2)
        big = app_of(2, internals=40)
        before = state_fingerprint(controller.state)
        plan = controller.plan(big)
        assert not plan.ok
        assert plan.failure is not None
        assert plan.phase is not None
        assert isinstance(plan.code, ReasonCode)
        assert state_fingerprint(controller.state) == before

    def test_plan_holds_nothing_with_snapshot_rollback(self):
        controller = fresh_controller(rollback="snapshot")
        before = state_fingerprint(controller.state)
        plan = controller.plan(app_of(1))
        assert plan.ok
        assert state_fingerprint(controller.state) == before

    def test_plan_describe_mentions_epoch_and_outcome(self):
        controller = fresh_controller()
        text = controller.plan(app_of(1)).describe()
        assert "epoch 0" in text
        assert "ADMISSIBLE" in text
        assert "resources held: none" in text


# ---------------------------------------------------------------------------
# commit(): bit-identical apply at an unchanged epoch
# ---------------------------------------------------------------------------


class TestCommit:
    def test_commit_reproduces_direct_admission(self):
        plan_side = fresh_controller()
        direct_side = fresh_controller()
        for seed in (1, 2, 3):
            app = app_of(seed)
            decision = plan_side.commit(plan_side.plan(app, f"a{seed}"))
            reference = direct_side.admit(app, f"a{seed}")
            assert decision.admitted and reference.admitted
            assert not decision.replanned
            assert layout_digest(decision.layout) == layout_digest(
                reference.layout
            )
        assert state_fingerprint(plan_side.state) == state_fingerprint(
            direct_side.state
        )

    def test_commit_registers_admission(self):
        controller = fresh_controller()
        decision = controller.commit(controller.plan(app_of(1), "x"))
        assert decision.admitted
        assert "x" in controller.admitted
        assert "x" in controller.manager.specifications
        controller.release("x")
        assert controller.manager.utilization() == 0.0

    def test_commit_twice_rejected(self):
        controller = fresh_controller()
        plan = controller.plan(app_of(1))
        controller.commit(plan)
        with pytest.raises(ValueError, match="already been committed"):
            controller.commit(plan)

    def test_errored_commit_does_not_burn_the_plan(self):
        """A commit that raises (duplicate app_id) leaves the plan
        committable once the conflict is resolved."""
        controller = fresh_controller()
        plan = controller.plan(app_of(1), "contested")
        controller.admit(app_of(2), "contested")  # someone takes the id
        with pytest.raises(ValueError, match="already admitted"):
            controller.commit(plan)
        assert not plan.committed
        controller.release("contested")
        decision = controller.commit(plan)        # now it goes through
        assert decision.admitted and decision.replanned

    def test_failed_plan_commits_to_failed_decision(self):
        controller = fresh_controller(2, 2)
        plan = controller.plan(app_of(2, internals=40))
        decision = controller.commit(plan)
        assert not decision.admitted
        assert decision.failure is plan.failure
        assert decision.code is plan.code
        assert not decision.replanned


# ---------------------------------------------------------------------------
# epoch conflicts: replan, never corrupt (ISSUE 5 satellite)
# ---------------------------------------------------------------------------


class TestEpochConflicts:
    def test_concurrent_admit_forces_replan(self):
        controller = fresh_controller()
        plan = controller.plan(app_of(1), "planned")
        # a concurrent admission moves the epoch
        interloper = controller.admit(app_of(2), "interloper")
        assert interloper.admitted
        assert controller.state.epoch != plan.epoch
        decision = controller.commit(plan)
        assert decision.replanned
        assert decision.admitted
        # nothing torn: both apps resident, full release drains to zero
        assert set(controller.admitted) == {"planned", "interloper"}
        controller.release_all()
        assert controller.manager.utilization() == 0.0
        assert controller.state.external_fragmentation() == 0.0

    def test_concurrent_release_replans_stale_failure(self):
        controller = fresh_controller(3, 3)
        filler_ids = []
        seed = 10
        while True:
            decision = controller.admit(app_of(seed), f"fill{seed}")
            seed += 1
            if not decision.admitted:
                break
            filler_ids.append(decision.app_id)
        victim = app_of(99)
        plan = controller.plan(victim, "victim")
        assert not plan.ok  # platform saturated
        # concurrent departures free capacity -> epoch moves
        for app_id in filler_ids:
            controller.release(app_id)
        decision = controller.commit(plan)
        assert decision.replanned
        assert decision.admitted  # the stale rejection was reconsidered
        controller.release_all()
        assert controller.manager.utilization() == 0.0

    def test_fault_between_plan_and_commit(self):
        controller = fresh_controller(4, 4)
        plan = controller.plan(app_of(1), "p")
        assert plan.ok
        # fail an element the plan placed a task on: the planned layout
        # is now impossible, but commit must replan — not corrupt state
        victim = next(iter(plan.layout.placement.values()))
        controller.state.fail_element(victim)
        assert controller.state.epoch != plan.epoch
        decision = controller.commit(plan)
        assert decision.replanned
        if decision.admitted:
            assert victim not in decision.layout.placement.values()
            controller.release_all()
        assert controller.manager.utilization() == 0.0

    def test_fault_during_simulated_churn_with_plans(self):
        """Plans interleaved with admits, releases and faults never
        corrupt the ledgers (drain-to-zero invariant)."""
        controller = fresh_controller(5, 5)
        rng = random.Random(7)
        pending = []
        resident = []
        counter = 0
        for step in range(120):
            action = rng.random()
            if action < 0.35:
                counter += 1
                pending.append(
                    controller.plan(app_of(rng.randrange(50)), f"n{counter}")
                )
            elif action < 0.6 and pending:
                decision = controller.commit(
                    pending.pop(rng.randrange(len(pending)))
                )
                if decision.admitted:
                    resident.append(decision.app_id)
            elif action < 0.8 and resident:
                controller.release(
                    resident.pop(rng.randrange(len(resident)))
                )
            elif step == 60:
                element = rng.choice(controller.platform.elements).name
                controller.state.fail_element(element)
                report = controller.recover()
                resident = [
                    app_id for app_id in resident
                    if app_id in controller.admitted
                ]
                for app_id in report.lost:
                    assert isinstance(
                        report.lost_codes[app_id], ReasonCode
                    )
        for app_id in list(controller.admitted):
            controller.release(app_id)
        assert controller.manager.utilization() == 0.0


# ---------------------------------------------------------------------------
# plan_batch: one pipeline pass, cheap ordered commits
# ---------------------------------------------------------------------------


class TestPlanBatch:
    def test_batch_leaves_state_untouched(self):
        controller = fresh_controller()
        before = state_fingerprint(controller.state)
        plans = controller.plan_batch([app_of(1), app_of(2), app_of(3)])
        assert len(plans) == 3
        assert state_fingerprint(controller.state) == before

    def test_ordered_commit_never_replans(self):
        controller = fresh_controller()
        apps = [app_of(seed) for seed in range(1, 5)]
        plans = controller.plan_batch(apps, [f"b{i}" for i in range(4)])
        decisions = controller.commit_batch(plans)
        for plan, decision in zip(plans, decisions):
            if plan.ok:
                assert decision.admitted and not decision.replanned

    def test_batch_matches_sequential_admission(self):
        batch_side = fresh_controller()
        seq_side = fresh_controller()
        apps = [app_of(seed, internals=4) for seed in range(1, 7)]
        ids = [f"s{i}" for i in range(len(apps))]
        plans = batch_side.plan_batch(apps, ids)
        decisions = batch_side.commit_batch(plans)
        for app, app_id, decision in zip(apps, ids, decisions):
            reference = seq_side.admit(app, app_id)
            assert decision.admitted == reference.admitted
            if decision.admitted:
                assert layout_digest(decision.layout) == layout_digest(
                    reference.layout
                )
        assert state_fingerprint(batch_side.state) == state_fingerprint(
            seq_side.state
        )

    def test_batch_with_infeasible_member(self):
        controller = fresh_controller(2, 2)
        apps = [app_of(1), app_of(2, internals=40), app_of(3)]
        plans = controller.plan_batch(apps)
        assert plans[0].ok and not plans[1].ok
        decisions = controller.commit_batch(plans)
        assert decisions[0].admitted and not decisions[1].admitted

    def test_batch_works_with_snapshot_rollback(self):
        """The snapshot strategy cannot restore() inside the batch's
        open transaction; the journal strategy takes over there."""
        controller = fresh_controller(2, 2, rollback="snapshot")
        before = state_fingerprint(controller.state)
        apps = [app_of(1), app_of(2, internals=40), app_of(3)]
        plans = controller.plan_batch(apps)
        assert state_fingerprint(controller.state) == before
        assert plans[0].ok and not plans[1].ok
        decisions = controller.commit_batch(plans)
        assert decisions[0].admitted and not decisions[1].admitted
        controller.release_all()
        assert controller.manager.utilization() == 0.0

    def test_batch_probe_does_not_evict_valid_memo_entries(self):
        """A memo entry recorded at a committed epoch must survive
        probes made at the batch's uncommitted epochs."""
        controller = fresh_controller(2, 2)
        loser = app_of(7, internals=60)
        first = controller.admit(loser)          # memoized rejection
        assert not first.admitted
        gate = controller.manager._gate
        assert len(gate._memo) == 1
        # batch: an admissible app moves the (uncommitted) epoch, then
        # the loser is probed again inside the batch
        controller.plan_batch([app_of(8), loser])
        assert len(gate._memo) == 1              # entry not evicted
        replay = controller.admit(loser)
        assert replay.memoized                   # O(1) replay still works

    def test_batch_failures_are_not_memoized(self):
        """Rejections at uncommitted epochs must not poison the memo."""
        controller = fresh_controller(3, 3)
        filler = app_of(5, internals=6)
        big = app_of(6, internals=8)
        plans = controller.plan_batch([filler, big])
        gate = controller.manager._gate
        memo_after_batch = dict(gate._memo)
        # no entry may be keyed at an epoch above the committed one
        assert all(
            entry[0] <= controller.state.epoch
            for entry in memo_after_batch.values()
        )


# ---------------------------------------------------------------------------
# the strategy registry (baselines as pipeline strategies)
# ---------------------------------------------------------------------------


class TestStrategyRegistry:
    def test_catalog_contains_the_baselines(self):
        catalog = available_strategies()
        assert {"first_fit", "random", "annealing", "optimal"} <= set(
            catalog["mapper"]
        )
        assert "kairos" in catalog["mapper"]
        assert "regret" in catalog["binder"]
        assert {"bfs", "dijkstra"} <= set(catalog["router"])
        assert {"simulation", "analytical", "skip"} <= set(
            catalog["validator"]
        )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown mapper strategy"):
            PhasePipeline(mapper="no_such_mapper")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_mapper("kairos")(lambda *a, **k: None)

    @pytest.mark.parametrize("mapper,params", [
        ("first_fit", {}),
        ("random", {"seed": 3}),
    ])
    def test_baseline_mapper_matches_direct_call(self, mapper, params):
        platform = mesh(4, 4)
        app = app_of(11, internals=4)
        controller = AdmissionController(
            platform, validation_mode="skip",
            pipeline=PhasePipeline(
                mapper=mapper, mapper_params=params, validator="skip"
            ),
        )
        decision = controller.admit(app, "via_registry")
        assert decision.admitted

        # the direct invocation over an identical (throwaway) state
        reference = Kairos(mesh(4, 4), validation_mode="skip")
        binding = bind(app, reference.state).choice
        direct_fn = first_fit_map if mapper == "first_fit" else random_map
        direct = direct_fn(
            app, binding, reference.state, app_id="via_registry", **params
        )
        assert decision.layout.placement == direct.placement

    def test_optimal_mapper_strategy(self):
        platform = mesh(3, 3)
        app = app_of(13, internals=2)
        controller = AdmissionController(
            platform, validation_mode="skip",
            pipeline=PhasePipeline(mapper="optimal", validator="skip"),
        )
        decision = controller.admit(app, "opt")
        assert decision.admitted

        reference = Kairos(mesh(3, 3), validation_mode="skip")
        binding = bind(app, reference.state).choice
        solution = optimal_map(app, binding, reference.state)
        assert decision.layout.placement == solution.placement
        # the strategy committed the placement: resources are held
        assert controller.manager.utilization() > 0.0

    def test_custom_strategy_end_to_end(self):
        @register_mapper("test_reverse_first_fit")
        def reverse_first_fit(app, binding, state, ctx, **params):
            from repro.core.mapping import MappingError, MappingResult
            result = MappingResult(placement={}, anchors={})
            for task in sorted(app.tasks, reverse=True):
                impl = binding[task]
                chosen = None
                for element in reversed(state.platform.elements):
                    if impl.runs_on(element) and state.is_available(
                        element, impl.requirement
                    ):
                        chosen = element
                        break
                if chosen is None:
                    raise MappingError(f"no element for {task!r}")
                state.occupy(chosen, ctx.app_id, task, impl.requirement)
                result.placement[task] = chosen.name
            return result

        try:
            controller = AdmissionController(
                mesh(4, 4), validation_mode="skip",
                pipeline=PhasePipeline(
                    mapper="test_reverse_first_fit", validator="skip"
                ),
            )
            decision = controller.admit(app_of(14), "custom")
            assert decision.admitted
            controller.release("custom")
            assert controller.manager.utilization() == 0.0
        finally:
            del _MAPPERS["test_reverse_first_fit"]

    def test_pipeline_describe(self):
        pipeline = PhasePipeline(mapper="random", validator="skip")
        description = pipeline.describe()
        assert description["mapper"] == "random"
        assert description["binder"] == "regret"
        assert description["validator"] == "skip"

    def test_kairos_default_pipeline_names(self):
        manager = Kairos(mesh(3, 3), validation_mode="skip")
        description = manager.pipeline.describe()
        assert description == {
            "binder": "regret",
            "mapper": "kairos",
            "router": "BfsRouter",
            "validator": "skip",
        }


# ---------------------------------------------------------------------------
# reason codes (ISSUE 5 satellite)
# ---------------------------------------------------------------------------


class TestReasonCodes:
    def test_gate_rejection_carries_code(self):
        controller = fresh_controller(2, 2)
        decision = controller.admit(app_of(1, internals=60))
        assert not decision.admitted
        assert decision.gated
        assert decision.code in (
            ReasonCode.AGGREGATE_CAPACITY,
            ReasonCode.NO_FEASIBLE_IMPLEMENTATION,
        )

    def test_memo_replay_preserves_code(self):
        controller = fresh_controller(2, 2)
        app = app_of(2, internals=60)
        first = controller.admit(app, "try1")
        second = controller.admit(app, "try2")
        assert not second.admitted
        assert second.memoized
        assert second.code is first.code

    def test_binder_and_gate_agree_on_phase_and_family(self):
        """Gated and ungated rejections land in the same phase; the
        codes classify within the binding family (the gate's aggregate
        check may fire where the binder reports the per-task symptom —
        same decision, finer diagnosis, exactly like the reasons)."""
        gated = fresh_controller(2, 2)
        ungated = fresh_controller(2, 2, fastpath=False)
        app = app_of(3, internals=60)
        a = gated.admit(app)
        b = ungated.admit(app)
        assert not a.admitted and not b.admitted
        assert a.phase == b.phase == Phase.BINDING
        binding_family = {
            ReasonCode.AGGREGATE_CAPACITY,
            ReasonCode.NO_FEASIBLE_IMPLEMENTATION,
            ReasonCode.BINDING_INFEASIBLE,
        }
        assert a.code in binding_family and b.code in binding_family

    def test_gate_layer3_matches_binder_code(self):
        """When the gate rejects via the per-implementation check it
        replays the binder's exact reason AND code."""
        controller = fresh_controller(2, 2)
        # one task whose implementations fit nowhere right now, but
        # whose aggregate demand alone is satisfiable: fill the
        # platform mostly, then probe
        seed = 0
        while True:
            decision = controller.admit(app_of(seed), f"f{seed}")
            seed += 1
            if not decision.admitted:
                break
        gated_failure = decision
        ungated = AdmissionController(
            mesh(2, 2), validation_mode="skip", fastpath=False
        )
        for s in range(seed - 1):
            ungated.admit(app_of(s), f"f{s}")
        reference = ungated.admit(app_of(seed - 1), f"f{seed - 1}")
        assert not reference.admitted
        assert gated_failure.phase == reference.phase
        if gated_failure.code is ReasonCode.NO_FEASIBLE_IMPLEMENTATION:
            assert gated_failure.reason == reference.reason
            assert gated_failure.code is reference.code

    def test_invalid_specification_code(self):
        from repro.apps.taskgraph import Application
        controller = fresh_controller()
        empty = Application("empty")
        decision = controller.admit(empty)
        assert not decision.admitted
        assert decision.code is ReasonCode.INVALID_SPECIFICATION

    def test_drop_reason_values_unchanged(self):
        # frozen: these literals appear in recorded JSONL traces
        assert ReasonCode.REJECTED == "rejected"
        assert ReasonCode.QUEUE_FULL == "queue_full"
        assert ReasonCode.TIMEOUT == "timeout"
        assert ReasonCode.DRAINED == "drained"
        assert ReasonCode.RETRIES_EXHAUSTED == "retries_exhausted"
        import json
        assert json.dumps({"reason": ReasonCode.DRAINED}) == (
            '{"reason": "drained"}'
        )

    def test_allocation_failure_default_code_by_phase(self):
        failure = AllocationFailure(Phase.MAPPING, "x", "boom")
        assert failure.code is ReasonCode.MAPPING_INFEASIBLE

    def test_recovery_lost_codes(self):
        controller = fresh_controller(2, 2)
        filler = []
        seed = 0
        while True:
            decision = controller.admit(app_of(seed), f"f{seed}")
            seed += 1
            if not decision.admitted:
                break
            filler.append(decision.app_id)
        assert filler
        # fail every element an app uses, then saturate: recovery loses it
        layout = controller.admitted[filler[0]]
        for element in set(layout.placement.values()):
            controller.state.fail_element(element)
        report = controller.recover()
        for app_id, reason in report.lost.items():
            assert isinstance(reason, str)  # trace format unchanged
            assert isinstance(report.lost_codes[app_id], ReasonCode)

    def test_sim_metrics_count_codes(self):
        from repro.sim import (
            FifoPolicy,
            SimulationConfig,
            default_traffic_classes,
            run_simulation,
        )
        result = run_simulation(
            mesh(4, 4),
            default_traffic_classes(seed=0, rate_scale=4.0, pool_size=4),
            FifoPolicy(capacity=4, timeout=5.0),
            SimulationConfig(duration=30.0, seed=0),
        )
        summary = result.metrics.summary()
        assert "rejections_by_code" in summary
        if summary["rejections_by_phase"]:
            assert sum(summary["rejections_by_code"].values()) == sum(
                summary["rejections_by_phase"].values()
            )


# ---------------------------------------------------------------------------
# the deprecation shim (ISSUE 5 satellite)
# ---------------------------------------------------------------------------


class TestDeprecationShim:
    def test_single_deprecation_warning_per_call(self):
        manager = Kairos(mesh(4, 4), validation_mode="skip")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            manager.allocate(app_of(1), "w")
        deprecations = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "Kairos.allocate is deprecated" in str(
            deprecations[0].message
        )

    def test_shim_raises_original_failure_type(self):
        manager = Kairos(mesh(2, 2), validation_mode="skip")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(AllocationFailure) as excinfo:
                manager.allocate(app_of(1, internals=60))
        assert excinfo.value.phase == Phase.BINDING
        assert isinstance(excinfo.value.code, ReasonCode)

    def test_shim_lockstep_with_plan_commit_over_random_churn(self):
        """allocate == plan+commit == admit over a random churn mix."""
        shim = Kairos(mesh(5, 5), validation_mode="skip")
        two_phase = AdmissionController(mesh(5, 5), validation_mode="skip")
        one_shot = AdmissionController(mesh(5, 5), validation_mode="skip")
        rng = random.Random(21)
        resident = []
        for step in range(80):
            if resident and rng.random() < 0.4:
                app_id = resident.pop(rng.randrange(len(resident)))
                shim.release(app_id)
                two_phase.release(app_id)
                one_shot.release(app_id)
                continue
            app = app_of(rng.randrange(40))
            app_id = f"c{step}"
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                try:
                    shim_layout = shim.allocate(app, app_id)
                except AllocationFailure as failure:
                    shim_outcome = (False, failure.phase, failure.code)
                else:
                    shim_outcome = (True, layout_digest(shim_layout))
            decision = two_phase.commit(two_phase.plan(app, app_id))
            direct = one_shot.admit(app, app_id)
            if decision.admitted:
                pc_outcome = (True, layout_digest(decision.layout))
                resident.append(app_id)
            else:
                pc_outcome = (False, decision.phase, decision.code)
            if direct.admitted:
                direct_outcome = (True, layout_digest(direct.layout))
            else:
                direct_outcome = (False, direct.phase, direct.code)
            assert shim_outcome == pc_outcome == direct_outcome, step
            assert (
                shim.state.epoch
                == two_phase.state.epoch
                == one_shot.state.epoch
            ), step
        assert state_fingerprint(shim.state) == state_fingerprint(
            two_phase.state
        ) == state_fingerprint(one_shot.state)

    def test_plan_commit_churn_digests_match_seed_reference(self):
        """The two-phase route reproduces the frozen seed digests."""
        from benchmarks.seed_reference.kairos import run_seed_churn

        pool = churn_pool(count=6, seed=0)
        config = ChurnConfig(steps=40, target_utilization=0.7, seed=3)
        platform = mesh(6, 6)
        seed_result = run_seed_churn(pool, mesh(6, 6), config)
        for path in ("admit", "plan_commit", "direct"):
            live = run_admission_churn(pool, platform, config, path=path)
            assert live.layouts == seed_result.layouts, path
            assert (live.admitted, live.rejected) == (
                seed_result.admitted, seed_result.rejected
            ), path


# ---------------------------------------------------------------------------
# controller plumbing
# ---------------------------------------------------------------------------


class TestControllerPlumbing:
    def test_one_controller_per_manager(self):
        manager = Kairos(mesh(3, 3), validation_mode="skip")
        assert manager.controller is manager.controller
        assert AdmissionController.wrap(manager) is manager.controller

    def test_wrap_rejects_double_bind(self):
        controller = fresh_controller()
        with pytest.raises(ValueError, match="already has a controller"):
            AdmissionController.__new__(AdmissionController)._bind(
                controller.manager
            )

    def test_duplicate_app_id_raises(self):
        controller = fresh_controller()
        controller.admit(app_of(1), "dup")
        with pytest.raises(ValueError, match="already admitted"):
            controller.admit(app_of(2), "dup")
        plan = controller.plan(app_of(2), "dup2")
        controller.commit(plan)
        with pytest.raises(ValueError, match="already admitted"):
            controller.plan(app_of(3), "dup2")

    def test_admit_decision_fields(self):
        controller = fresh_controller()
        decision = controller.admit(app_of(1), "d")
        assert decision.admitted
        assert decision.app_id == "d"
        assert decision.epoch == controller.state.epoch
        assert decision.timings is decision.layout.timings
        assert decision.timings.total > 0.0
