"""Tests for fault campaigns and fault-driven re-allocation."""

from __future__ import annotations

import pytest

from repro.arch import AllocationState, mesh
from repro.arch.faults import (
    Fault,
    FaultCampaign,
    apply_fault,
    apply_repair,
    degrade_sequence,
    random_campaign,
    random_element_campaign,
    random_link_campaign,
    region_elements,
    storm_campaign,
    stranded_applications,
)
from repro.manager import Kairos
from tests.conftest import chain_app


class TestFault:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            Fault("explosion", ("x",))
        with pytest.raises(ValueError):
            Fault("element", ("a", "b"))
        with pytest.raises(ValueError):
            Fault("link", ("a",))


class TestCampaign:
    def test_inject_in_order(self, state3x3):
        campaign = FaultCampaign()
        campaign.add_element_fault("dsp_0_0").add_element_fault("dsp_1_1")
        first = campaign.inject_next(state3x3)
        assert first.target == ("dsp_0_0",)
        assert state3x3.is_failed("dsp_0_0")
        assert not state3x3.is_failed("dsp_1_1")
        campaign.inject_next(state3x3)
        assert state3x3.is_failed("dsp_1_1")
        assert campaign.inject_next(state3x3) is None

    def test_inject_all(self, state3x3):
        campaign = FaultCampaign()
        campaign.add_element_fault("dsp_0_0")
        campaign.add_link_fault("r_0_0", "r_0_1")
        injected = campaign.inject_all(state3x3)
        assert len(injected) == 2
        assert state3x3.vc_free("r_0_0", "r_0_1") == 0

    def test_random_campaign_deterministic(self, state3x3):
        a = random_element_campaign(state3x3, count=3, seed=5)
        b = random_element_campaign(state3x3, count=3, seed=5)
        assert a.faults == b.faults

    def test_random_campaign_respects_spare(self, state3x3):
        campaign = random_element_campaign(
            state3x3, count=7, seed=1, spare=("dsp_0_0", "dsp_1_1")
        )
        targets = {fault.target[0] for fault in campaign.faults}
        assert "dsp_0_0" not in targets
        assert "dsp_1_1" not in targets

    def test_random_campaign_budget(self, state3x3):
        with pytest.raises(ValueError):
            random_element_campaign(state3x3, count=10, seed=0)


class TestCampaignSchedule:
    def test_pairs_times_with_faults_in_order(self):
        campaign = FaultCampaign()
        campaign.add_element_fault("dsp_0_0").add_link_fault("a", "b")
        scheduled = campaign.schedule((5.0, 9.0))
        assert scheduled == (
            (5.0, Fault("element", ("dsp_0_0",))),
            (9.0, Fault("link", ("a", "b"))),
        )

    def test_time_count_must_match(self):
        campaign = FaultCampaign().add_element_fault("dsp_0_0")
        with pytest.raises(ValueError):
            campaign.schedule((1.0, 2.0))

    def test_already_injected_faults_excluded(self, state3x3):
        campaign = FaultCampaign()
        campaign.add_element_fault("dsp_0_0").add_element_fault("dsp_1_1")
        campaign.inject_next(state3x3)
        scheduled = campaign.schedule((4.0,))
        assert scheduled == ((4.0, Fault("element", ("dsp_1_1",))),)

    def test_times_must_be_non_decreasing(self):
        campaign = FaultCampaign()
        campaign.add_element_fault("a").add_element_fault("b")
        with pytest.raises(ValueError):
            campaign.schedule((2.0, 1.0))


class TestLinkCampaign:
    def test_deterministic(self, state3x3):
        a = random_link_campaign(state3x3, count=4, seed=5)
        b = random_link_campaign(state3x3, count=4, seed=5)
        assert a.faults == b.faults
        assert all(fault.kind == "link" for fault in a.faults)

    def test_spare_protects_endpoints(self, state3x3):
        campaign = random_link_campaign(
            state3x3, count=6, seed=1, spare=("r_0_0",)
        )
        endpoints = {
            node for fault in campaign.faults for node in fault.target
        }
        assert "r_0_0" not in endpoints

    def test_budget(self, state3x3):
        with pytest.raises(ValueError):
            random_link_campaign(state3x3, count=10_000, seed=0)


class TestMixedCampaign:
    def test_link_fraction_sets_the_mix(self, state3x3):
        campaign = random_campaign(
            state3x3, count=6, seed=2, link_fraction=0.5
        )
        kinds = [fault.kind for fault in campaign.faults]
        assert kinds.count("link") == 3
        assert kinds.count("element") == 3

    def test_deterministic_interleaving(self, state3x3):
        a = random_campaign(state3x3, count=6, seed=2, link_fraction=0.34)
        b = random_campaign(state3x3, count=6, seed=2, link_fraction=0.34)
        assert a.faults == b.faults

    def test_spare_protects_elements_and_their_links(self, state3x3):
        campaign = random_campaign(
            state3x3, count=6, seed=3, link_fraction=0.5,
            spare=("dsp_0_0", "r_0_0"),
        )
        touched = {
            node for fault in campaign.faults for node in fault.target
        }
        assert touched & {"dsp_0_0", "r_0_0"} == set()

    def test_fraction_validated(self, state3x3):
        with pytest.raises(ValueError):
            random_campaign(state3x3, count=2, link_fraction=1.5)

    def test_repair_after_propagates(self, state3x3):
        campaign = random_campaign(
            state3x3, count=4, seed=0, link_fraction=0.5, repair_after=9.0
        )
        assert all(fault.repair_after == 9.0 for fault in campaign.faults)


class TestStormCampaign:
    def test_radius_zero_hits_only_epicenters(self, state3x3):
        campaign = storm_campaign(state3x3, epicenters=2, radius=0, seed=4)
        assert len(campaign.faults) == 2

    def test_blast_radius_is_the_neighbourhood(self, state3x3):
        campaign = storm_campaign(state3x3, epicenters=1, radius=1, seed=4)
        epicenter = campaign.faults[0].target[0]
        struck = {fault.target[0] for fault in campaign.faults}
        # ordering within a storm is sorted, so recover the epicenter
        # from region membership instead of position
        regions = [
            set(region_elements(state3x3, e.name, 1))
            for e in state3x3.platform.elements
        ]
        assert any(struck == region for region in regions), (
            epicenter, struck,
        )

    def test_overlapping_storms_deduplicate(self, state3x3):
        campaign = storm_campaign(state3x3, epicenters=9, radius=2, seed=0)
        targets = [fault.target[0] for fault in campaign.faults]
        assert len(targets) == len(set(targets))

    def test_spare_excluded_from_blast(self, state3x3):
        campaign = storm_campaign(
            state3x3, epicenters=3, radius=2, seed=1, spare=("dsp_1_1",)
        )
        assert "dsp_1_1" not in {f.target[0] for f in campaign.faults}

    def test_deterministic(self, state3x3):
        a = storm_campaign(state3x3, epicenters=2, radius=1, seed=7)
        b = storm_campaign(state3x3, epicenters=2, radius=1, seed=7)
        assert a.faults == b.faults

    def test_validation(self, state3x3):
        with pytest.raises(ValueError):
            storm_campaign(state3x3, epicenters=2, radius=-1)
        with pytest.raises(ValueError):
            storm_campaign(state3x3, epicenters=100)


class TestRegionElements:
    def test_radius_zero_is_the_center(self, state3x3):
        assert region_elements(state3x3, "dsp_1_1", 0) == ("dsp_1_1",)

    def test_radius_grows_monotonically(self, state3x3):
        inner = set(region_elements(state3x3, "dsp_0_0", 1))
        outer = set(region_elements(state3x3, "dsp_0_0", 2))
        assert "dsp_0_0" in inner
        assert inner < outer


class TestApplyRepair:
    def test_element_round_trip_restores_state(self, state3x3):
        fault = Fault("element", ("dsp_1_1",), repair_after=5.0)
        apply_fault(state3x3, fault)
        assert state3x3.is_failed("dsp_1_1")
        apply_repair(state3x3, fault)
        assert not state3x3.is_failed("dsp_1_1")

    def test_link_round_trip_restores_capacity(self, state3x3):
        before = state3x3.vc_free("r_0_0", "r_0_1")
        fault = Fault("link", ("r_0_0", "r_0_1"), repair_after=5.0)
        apply_fault(state3x3, fault)
        assert state3x3.vc_free("r_0_0", "r_0_1") == 0
        apply_repair(state3x3, fault)
        assert state3x3.vc_free("r_0_0", "r_0_1") == before


class TestRecoverDefaultSpecs:
    def test_recover_uses_remembered_specifications(self, mesh3x3):
        manager = Kairos(mesh3x3, validation_mode="skip")
        app = chain_app(2)
        layout = manager.allocate(app, "app")
        manager.state.fail_element(layout.placement["t0"])
        report = manager.recover()  # no specs supplied: registry used
        assert "app" in report.recovered
        assert report.lost == {}

    def test_explicit_specs_still_override(self, mesh3x3):
        manager = Kairos(mesh3x3, validation_mode="skip")
        layout = manager.allocate(chain_app(2), "app")
        manager.state.fail_element(layout.placement["t0"])
        report = manager.recover({})  # explicit empty dict: legacy path
        assert report.lost == {
            "app": "no application specification supplied"
        }

    def test_release_forgets_the_specification(self, mesh3x3):
        manager = Kairos(mesh3x3, validation_mode="skip")
        manager.allocate(chain_app(2), "app")
        assert "app" in manager.specifications
        manager.release("app")
        assert manager.specifications == {}


class TestStranded:
    def test_element_fault_strands_resident_app(self, mesh3x3):
        manager = Kairos(mesh3x3)
        layout = manager.allocate(chain_app(2), "app")
        element = layout.placement["t0"]
        fault = Fault("element", (element,))
        assert stranded_applications(manager.state, fault) == ("app",)

    def test_element_fault_strands_route_transit(self, mesh4x4):
        manager = Kairos(mesh4x4)
        app = chain_app(2)
        layout = manager.allocate(app, "app")
        route = next(iter(layout.routes.values()), None)
        if route is None:
            pytest.skip("co-located; no transit to test")
        # failing a router on the path is a link-level concern; test an
        # element on the path instead (source element)
        fault = Fault("element", (route.path[0],))
        assert "app" in stranded_applications(manager.state, fault)

    def test_link_fault_strands_crossing_app(self, mesh3x3):
        manager = Kairos(mesh3x3)
        layout = manager.allocate(chain_app(2), "app")
        route = next(iter(layout.routes.values()), None)
        if route is None:
            pytest.skip("co-located; no route")
        a, b = route.path[0], route.path[1]
        fault = Fault("link", (a, b))
        assert stranded_applications(manager.state, fault) == ("app",)

    def test_unrelated_fault_strands_nobody(self, mesh3x3):
        manager = Kairos(mesh3x3)
        layout = manager.allocate(chain_app(2), "app")
        used = set(layout.placement.values()) | {
            node for r in layout.routes.values() for node in r.path
        }
        spare = next(
            e.name for e in mesh3x3.elements if e.name not in used
        )
        fault = Fault("element", (spare,))
        assert stranded_applications(manager.state, fault) == ()


class TestDegradeSequence:
    def test_trail_records_victims(self, mesh3x3):
        manager = Kairos(mesh3x3)
        layout = manager.allocate(chain_app(2), "app")
        campaign = FaultCampaign()
        campaign.add_element_fault(layout.placement["t0"])
        trail = degrade_sequence(manager.state, campaign)
        assert len(trail) == 1
        fault, victims = trail[0]
        assert victims == ("app",)
        assert manager.state.is_failed(layout.placement["t0"])

    def test_survivability_under_attrition(self):
        """Keep failing spare elements and recovering; the app survives
        as long as capacity remains."""
        platform = mesh(3, 3)
        manager = Kairos(platform, validation_mode="skip")
        app = chain_app(2, cycles=60)
        manager.allocate(app, "app")
        specs = {"app": app}
        survived = 0
        for round_index in range(5):
            layout = manager.admitted["app"]
            victim = layout.placement["t0"]
            manager.state.fail_element(victim)
            report = manager.recover(specs)
            if "app" in report.recovered:
                survived += 1
            else:
                break
        assert survived >= 3  # 9 elements, 2 tasks, 5 rounds of attrition
