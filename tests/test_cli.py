"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestInfo:
    def test_info_prints_platform(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "crisp_5pkg" in out
        assert "45x dsp" in out
        assert "beamforming" in out


class TestPackInspectAllocate:
    def test_pack_generated_then_inspect(self, tmp_path, capsys):
        target = tmp_path / "app.kair"
        assert main(["pack", "--generate", "5", str(target)]) == 0
        assert target.exists()
        assert main(["inspect", str(target)]) == 0
        out = capsys.readouterr().out
        assert "generated_5" in out
        assert "task" in out

    def test_pack_beamformer(self, tmp_path, capsys):
        target = tmp_path / "beam.kair"
        assert main(["pack", "--beamformer", str(target)]) == 0
        out = capsys.readouterr().out
        assert "53 tasks" in out

    def test_allocate_generated(self, tmp_path, capsys):
        target = tmp_path / "app.kair"
        main(["pack", "--generate", "5", str(target)])
        code = main(["allocate", str(target), "--validation", "skip"])
        out = capsys.readouterr().out
        assert code == 0
        assert "execution layout" in out
        assert "timings" in out

    def test_allocate_with_plan_and_analytical(self, tmp_path, capsys):
        target = tmp_path / "app.kair"
        main(["pack", "--generate", "6", str(target)])
        code = main([
            "allocate", str(target), "--plan", "--method", "analytical",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bootstrap plan" in out
        assert "constraints satisfied" in out

    def test_allocate_missing_file(self, capsys):
        assert main(["allocate", "/nonexistent.kair"]) == 2

    def test_inspect_non_kairos_file(self, tmp_path, capsys):
        target = tmp_path / "not.kair"
        target.write_bytes(b"\x7fELF" + b"\x00" * 16)
        assert main(["inspect", str(target)]) == 1
        assert "not a Kairos" in capsys.readouterr().out


class TestExperimentCommands:
    def test_table1_smoke(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_APPS", "4")
        monkeypatch.setenv("REPRO_SEQUENCES", "1")
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I (measured)" in out
        assert "Communication Small" in out

    def test_fig10_smoke(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FIG10_COMM_STEP", "25")
        monkeypatch.setenv("REPRO_FIG10_FRAG_STEP", "1000")
        assert main(["fig10"]) == 0
        assert "admission" in capsys.readouterr().out


class TestSim:
    def test_sim_smoke(self, capsys):
        code = main([
            "sim", "--platform", "4x4", "--duration", "10",
            "--policy", "fifo", "--rate-scale", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "events processed" in out
        assert "blocking" in out
        assert "class interactive" in out

    def test_sim_record_then_replay_identical(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "sim", "--platform", "4x4", "--duration", "10",
            "--policy", "retry", "--rate-scale", "3", "--faults", "1",
            "--record", str(trace),
        ]) == 0
        assert trace.exists()
        assert main(["sim", "--replay", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "REPLAY IDENTICAL" in out

    def test_sim_resilient_storm_record_then_replay(self, tmp_path, capsys):
        trace = tmp_path / "storm.jsonl"
        assert main([
            "sim", "--platform", "6x6", "--duration", "20",
            "--policy", "priority", "--rate-scale", "8", "--seed", "3",
            "--faults", "2", "--fault-mttr", "5", "--fault-storm", "1",
            "--resilience", "--record", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "requeue" in out
        assert main(["sim", "--replay", str(trace)]) == 0
        assert "REPLAY IDENTICAL" in capsys.readouterr().out

    def test_sim_resilience_knobs_validated(self, capsys):
        assert main([
            "sim", "--platform", "4x4", "--duration", "5",
            "--fault-links", "1.5",
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sim_replay_missing_file(self, capsys):
        assert main(["sim", "--replay", "/nonexistent.jsonl"]) == 2

    def test_sim_replay_incomplete_header(self, tmp_path, capsys):
        trace = tmp_path / "broken.jsonl"
        trace.write_text('{"header": {"platform": "4x4"}}\n')
        assert main(["sim", "--replay", str(trace)]) == 2
        assert "missing" in capsys.readouterr().err

    def test_sim_bad_platform_spec(self, capsys):
        assert main(["sim", "--platform", "bogus", "--duration", "5"]) == 2

    def test_sim_unwritable_record_path(self, capsys):
        assert main([
            "sim", "--platform", "3x3", "--duration", "2",
            "--record", "/nonexistent-dir/t.jsonl",
        ]) == 2
        assert "error:" in capsys.readouterr().err


class TestClusterSim:
    def test_cluster_sim_smoke(self, capsys):
        code = main([
            "cluster", "sim", "--platform", "6x6", "--shards", "2",
            "--duration", "10", "--rate-scale", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "across 2 shard(s)" in out
        assert "events processed" in out

    def test_cluster_kill_campaign_record_then_replay(self, tmp_path,
                                                      capsys):
        trace = tmp_path / "cluster.jsonl"
        assert main([
            "cluster", "sim", "--platform", "6x6", "--shards", "2",
            "--duration", "20", "--rate-scale", "2", "--kills", "1",
            "--downtime", "8", "--record", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "shard kills" in out
        assert "availability" in out
        assert main(["cluster", "sim", "--replay", str(trace)]) == 0
        assert "REPLAY IDENTICAL" in capsys.readouterr().out

    def test_cluster_sim_validates_shard_split(self, capsys):
        assert main([
            "cluster", "sim", "--platform", "6x6", "--shards", "4",
            "--duration", "5",
        ]) == 2
        assert "error:" in capsys.readouterr().err


class TestSweep:
    def test_sweep_smoke_verifies_and_writes(self, tmp_path, capsys):
        output = tmp_path / "sweep.json"
        report = tmp_path / "sweep.md"
        code = main([
            "sweep", "--smoke",
            "--output", str(output), "--report", str(report),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "SWEEP VERIFIED" in out
        assert "swept matrix 'smoke'" in out
        assert "best=" in out
        payload = json.loads(output.read_text())
        assert payload["name"] == "smoke"
        assert len(payload["cells"]) == 8
        assert report.read_text().startswith("# Scenario sweep: smoke")

    def test_sweep_matrix_from_file(self, tmp_path, capsys):
        spec = {
            "name": "filed",
            "topologies": ["mesh:4x4"],
            "traffic": ["default"],
            "mappers": ["kairos", "first_fit"],
            "duration": 4.0,
            "rate_scale": 2.0,
        }
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps(spec))
        code = main(["sweep", "--matrix", str(path), "--seed", "7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "swept matrix 'filed': 2 cells" in out

    def test_sweep_bad_matrix_rejected(self, tmp_path, capsys):
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps({"name": "bad",
                                    "topologies": ["ring:4x4"]}))
        assert main(["sweep", "--matrix", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sim_traffic_and_mapper_flags(self, capsys):
        code = main([
            "sim", "--platform", "fat_tree:16", "--duration", "6",
            "--traffic", "hot_spot", "--mapper", "first_fit",
            "--rate-scale", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "class hot" in out

    def test_sim_unknown_traffic_rejected(self, capsys):
        assert main([
            "sim", "--duration", "5", "--traffic", "nope",
        ]) == 2
        assert "error:" in capsys.readouterr().err


class TestArgparse:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["transmogrify"])

    def test_pack_requires_source(self):
        with pytest.raises(SystemExit):
            main(["pack", "out.kair"])
