"""Knapsack solver tests: unit cases plus oracle comparisons."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ResourceVector
from repro.core.knapsack import (
    KnapsackItem,
    solve_dp,
    solve_exhaustive,
    solve_greedy,
)


def item(key: str, profit: float, **req) -> KnapsackItem:
    return KnapsackItem(key, profit, ResourceVector(req))


class TestGreedy:
    def test_takes_everything_when_it_fits(self):
        items = [item("a", 5, cycles=10), item("b", 3, cycles=10)]
        solution = solve_greedy(items, ResourceVector(cycles=100))
        assert set(solution.chosen) == {"a", "b"}
        assert solution.profit == 8

    def test_respects_capacity(self):
        items = [item("a", 5, cycles=60), item("b", 4, cycles=60)]
        solution = solve_greedy(items, ResourceVector(cycles=100))
        assert len(solution.chosen) == 1

    def test_zero_profit_items_skipped(self):
        items = [item("a", 0, cycles=1)]
        assert solve_greedy(items, ResourceVector(cycles=100)).chosen == ()

    def test_oversized_items_skipped(self):
        items = [item("a", 100, cycles=200), item("b", 1, cycles=10)]
        solution = solve_greedy(items, ResourceVector(cycles=100))
        assert solution.chosen == ("b",)

    def test_negative_profit_rejected_at_construction(self):
        with pytest.raises(ValueError):
            item("a", -1, cycles=1)

    def test_improvement_pass_fixes_greedy_trap(self):
        """Density greedy picks the two lean items; the fat item is
        better.  The O(T^2) swap pass must recover it."""
        items = [
            item("fat", 10, cycles=100),
            item("lean1", 3, cycles=10),
            item("lean2", 3, cycles=10),
        ]
        solution = solve_greedy(items, ResourceVector(cycles=100))
        # optimum is the fat item alone (10 > 6)
        assert solution.profit == 10
        assert solution.chosen == ("fat",)

    def test_multidimensional(self):
        items = [
            item("a", 6, cycles=50, memory=30),
            item("b", 5, cycles=50, memory=5),
            item("c", 4, cycles=10, memory=30),
        ]
        capacity = ResourceVector(cycles=100, memory=32)
        solution = solve_greedy(items, capacity)
        total = ResourceVector()
        for chosen in solution.chosen:
            total = total + next(i.requirement for i in items if i.key == chosen)
        assert total.fits_in(capacity)

    def test_empty_input(self):
        assert solve_greedy([], ResourceVector(cycles=10)).profit == 0.0

    def test_deterministic_tie_break(self):
        items = [item("b", 5, cycles=50), item("a", 5, cycles=50)]
        first = solve_greedy(items, ResourceVector(cycles=50))
        second = solve_greedy(list(reversed(items)), ResourceVector(cycles=50))
        assert first.chosen == second.chosen == ("a",)


class TestDp:
    def test_exact_on_classic_instance(self):
        items = [
            item("a", 60, cycles=10),
            item("b", 100, cycles=20),
            item("c", 120, cycles=30),
        ]
        solution = solve_dp(items, ResourceVector(cycles=50))
        assert solution.profit == 220
        assert set(solution.chosen) == {"b", "c"}

    def test_rejects_multidimensional(self):
        items = [item("a", 1, cycles=1, memory=1)]
        with pytest.raises(ValueError):
            solve_dp(items, ResourceVector(cycles=10, memory=10))

    def test_all_empty_requirements(self):
        items = [item("a", 1), item("b", 2)]
        solution = solve_dp(items, ResourceVector())
        assert set(solution.chosen) == {"a", "b"}


class TestExhaustive:
    def test_matches_dp_on_1d(self):
        items = [item(f"i{k}", (k * 7) % 13 + 1, cycles=(k * 3) % 9 + 1)
                 for k in range(10)]
        capacity = ResourceVector(cycles=15)
        assert solve_exhaustive(items, capacity).profit == pytest.approx(
            solve_dp(items, capacity).profit
        )

    def test_size_limit(self):
        items = [item(f"i{k}", 1, cycles=1) for k in range(21)]
        with pytest.raises(ValueError):
            solve_exhaustive(items, ResourceVector(cycles=5))


@st.composite
def knapsack_instances(draw):
    n = draw(st.integers(1, 10))
    items = []
    for index in range(n):
        profit = draw(st.integers(1, 50))
        weight = draw(st.integers(1, 20))
        items.append(item(f"i{index}", float(profit), cycles=weight))
    capacity = draw(st.integers(5, 40))
    return items, ResourceVector(cycles=capacity)


@settings(max_examples=60, deadline=None)
@given(knapsack_instances())
def test_greedy_feasible_and_not_catastrophic(instance):
    """Greedy+swap stays feasible and achieves >= 1/2 of optimum.

    The density greedy with a single-swap improvement is a classic
    1/2-approximation for knapsack; the exhaustive solver provides the
    optimum on these small instances.
    """
    items, capacity = instance
    greedy = solve_greedy(items, capacity)
    used = ResourceVector()
    by_key = {i.key: i for i in items}
    for key in greedy.chosen:
        used = used + by_key[key].requirement
    assert used.fits_in(capacity)
    optimal = solve_exhaustive(items, capacity)
    assert greedy.profit >= optimal.profit / 2 - 1e-9


@settings(max_examples=40, deadline=None)
@given(knapsack_instances())
def test_dp_matches_exhaustive(instance):
    items, capacity = instance
    assert solve_dp(items, capacity).profit == pytest.approx(
        solve_exhaustive(items, capacity).profit
    )
