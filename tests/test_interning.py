"""Id-interning tests: the integer tables agree name-for-name with the
name-based views (and with the frozen seed implementation) on every
builder topology, including after fault injection."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.arch import (
    AllocationState,
    ResourceVector,
    TopologyError,
    crisp,
    irregular,
    mesh,
    torus,
)
from repro.core.search import RingSearch
from repro.routing import BfsRouter, DijkstraRouter

from benchmarks.seed_reference.router import BfsRouter as SeedBfsRouter
from benchmarks.seed_reference.search import RingSearch as SeedRingSearch
from benchmarks.seed_reference.state import AllocationState as SeedState


def platforms():
    return [
        mesh(3, 3),
        mesh(4, 6),
        torus(3, 4),
        irregular(4, 4, drop_fraction=0.3, seed=2),
        crisp(packages=2),
    ]


@pytest.fixture(params=range(5), ids=["mesh3x3", "mesh4x6", "torus3x4",
                                      "irregular4x4", "crisp2pkg"])
def platform(request):
    return platforms()[request.param]


class TestIdTables:
    def test_node_id_roundtrip(self, platform):
        for node in platform.nodes:
            node_id = platform.node_id(node.name)
            assert platform.node_by_id(node_id) is node
        assert platform.node_count == len(platform.nodes)

    def test_unknown_node_id_rejected(self, platform):
        with pytest.raises(TopologyError):
            platform.node_id("ghost")

    def test_neighbor_ids_agree_with_neighbors(self, platform):
        for node in platform.nodes:
            node_id = platform.node_id(node.name)
            by_id = [
                platform.node_by_id(n).name
                for n in platform.neighbor_ids(node_id)
            ]
            by_name = [n.name for n in platform.neighbors(node.name)]
            assert by_id == by_name

    def test_directed_slots_pair_and_match_links(self, platform):
        for link in platform.links:
            id_a = platform.node_id(link.a.name)
            id_b = platform.node_id(link.b.name)
            forward = platform.directed_slot(id_a, id_b)
            backward = platform.directed_slot(id_b, id_a)
            assert forward ^ 1 == backward
            assert forward >> 1 == backward >> 1
            assert platform.link_by_id(forward >> 1) is link
            assert platform.slot_vc[forward] == link.virtual_channels
            assert platform.slot_bw[backward] == link.bandwidth

    def test_neighbor_slots_are_consistent(self, platform):
        for node in platform.nodes:
            node_id = platform.node_id(node.name)
            ids = platform.neighbor_ids(node_id)
            slots = platform.neighbor_slots(node_id)
            assert len(ids) == len(slots)
            for neighbor_id, slot in zip(ids, slots):
                assert platform.directed_slot(node_id, neighbor_id) == slot

    def test_element_ids_agree_with_elements(self, platform):
        names_by_id = [
            platform.node_by_id(i).name for i in platform.element_ids
        ]
        assert names_by_id == [e.name for e in platform.elements]
        for node in platform.nodes:
            node_id = platform.node_id(node.name)
            from repro.arch.elements import is_element
            assert platform.is_element_id(node_id) == is_element(node)

    def test_element_pair_ids_agree_with_element_pairs(self, platform):
        by_id = [
            (platform.node_by_id(a).name, platform.node_by_id(b).name)
            for a, b in platform.element_pair_ids
        ]
        by_name = [(a.name, b.name) for a, b in platform.element_pairs]
        assert by_id == by_name

    def test_element_neighbor_ids_agree(self, platform):
        for element in platform.elements:
            by_id = [
                platform.node_by_id(i).name
                for i in platform.element_neighbor_ids(element.name)
            ]
            by_name = [e.name for e in platform.element_neighbors(element)]
            assert by_id == by_name


def _twin_states(platform_factory):
    """A live state and a seed-reference state over identical platforms."""
    return (
        AllocationState(platform_factory()),
        SeedState(platform_factory()),
    )


def _inject_faults(state) -> None:
    elements = state.platform.elements
    state.fail_element(elements[len(elements) // 2].name)
    router_links = [
        link for link in state.platform.links
        if link.a.name.startswith("r") and link.b.name.startswith("r")
    ]
    if router_links:
        link = router_links[len(router_links) // 3]
        state.fail_link(link.a.name, link.b.name)


def _occupy_some(state) -> None:
    requirement = ResourceVector(cycles=30, memory=4)
    for index, element in enumerate(state.platform.elements):
        if index % 3 == 0:
            try:
                state.occupy(element.name, "load", f"t{index}", requirement)
            except Exception:
                pass
    reservable = [
        link for link in state.platform.links
        if not link.a.name.startswith("r") or not link.b.name.startswith("r")
    ]
    for index, link in enumerate(reservable[:5]):
        state.reserve_route(
            "load", f"c{index}", [link.a.name, link.b.name], 10.0
        )


@pytest.mark.parametrize(
    "factory", [lambda: mesh(4, 4), lambda: torus(3, 3), lambda: crisp(packages=2)],
    ids=["mesh", "torus", "crisp"],
)
class TestSeedAgreement:
    def test_router_paths_match_seed(self, factory):
        live, seed = _twin_states(factory)
        for state in (live, seed):
            _occupy_some(state)
            _inject_faults(state)
        elements = [e.name for e in live.platform.elements]
        probes = [
            (elements[i], elements[-1 - i])
            for i in range(0, len(elements) // 2, 3)
        ]
        live_router, seed_router = BfsRouter(), SeedBfsRouter()
        for source, target in probes:
            if source == target:
                continue
            live_path = live_router.find_path(live, source, target, 5.0)
            seed_path = seed_router.find_path(seed, source, target, 5.0)
            assert live_path == seed_path, (source, target)

    def test_ring_search_matches_seed(self, factory):
        live, seed = _twin_states(factory)
        for state in (live, seed):
            _occupy_some(state)
            _inject_faults(state)
        elements = [e.name for e in live.platform.elements]
        origins = [elements[0], elements[len(elements) // 2]]
        live_search = RingSearch(live, origins)
        seed_search = SeedRingSearch(seed, origins)
        while not (live_search.exhausted and seed_search.exhausted):
            live_ring = [e.name for e in live_search.advance()]
            seed_ring = [e.name for e in seed_search.advance()]
            assert live_ring == seed_ring
        for origin in origins:
            for node in live.platform.nodes:
                assert live_search.distances.get(origin, node.name) == \
                    seed_search.distances.get(origin, node.name)

    def test_dijkstra_lengths_match_seed_bfs(self, factory):
        """Dijkstra with zero congestion weight stays hop-minimal."""
        live, _seed = _twin_states(factory)
        elements = [e.name for e in live.platform.elements]
        router = DijkstraRouter(congestion_weight=0.0)
        bfs = BfsRouter()
        for source, target in zip(elements[:6], reversed(elements[:6])):
            if source == target:
                continue
            a = router.find_path(live, source, target, 1.0)
            b = bfs.find_path(live, source, target, 1.0)
            assert a is not None and b is not None
            assert len(a) == len(b)
