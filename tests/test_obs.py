"""Tests for repro.obs: registry, tracing, exporters, shared stats.

The load-bearing assertions are the determinism ones: a run with
observability fully enabled must produce a bit-identical decision
trace (the pinned-fixture digest from ``test_resilience.py`` is reused
here), and the stats helpers that replaced the duplicated percentile /
mean arithmetic must reproduce the original outputs byte-for-byte.
"""

from __future__ import annotations

import io
import json
import math
from pathlib import Path

import pytest

from repro.obs import (
    DEFAULT_LATENCY_EDGES,
    DISABLED,
    MetricRegistry,
    NullHistogram,
    NullRegistry,
    NullTracer,
    Observability,
    SNAPSHOT_SCHEMA,
    Tracer,
    enabled,
)
from repro.obs.export import (
    diff_snapshots,
    load_snapshot,
    parse_prometheus,
    snapshot,
    to_prometheus,
    write_snapshot,
)
from repro.obs.registry import Histogram
from repro.obs.stats import (
    StatsAggregator,
    latency_summary,
    mean,
    percentile,
    summarize,
)
from repro.obs.tracing import read_spans, write_spans

FIXTURES = Path(__file__).parent / "data"


class TestCounterAndGauge:
    def test_counter_increments_and_reads_back(self):
        registry = MetricRegistry()
        counter = registry.counter("admit.attempts")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        assert registry.counter_value("admit.attempts") == 4

    def test_interning_is_idempotent(self):
        registry = MetricRegistry()
        first = registry.counter("x")
        second = registry.counter("x")
        assert first is second
        first.inc()
        assert second.value == 1

    def test_counter_value_of_unknown_name_is_zero(self):
        assert MetricRegistry().counter_value("never.interned") == 0

    def test_gauge_set_inc_dec(self):
        gauge = MetricRegistry().gauge("queue.depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6

    def test_snapshot_is_sorted_and_json_able(self):
        registry = MetricRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        dump = registry.snapshot()
        assert list(dump["counters"]) == ["a", "b"]
        assert dump["counters"] == {"a": 2, "b": 1}
        assert dump["gauges"] == {"g": 1.5}
        json.dumps(dump)  # must not raise


class TestHistogram:
    def test_empty_histogram(self):
        hist = Histogram("h", (1.0, 2.0))
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(50) is None
        row = hist.as_dict()
        assert row["count"] == 0
        assert row["p50"] is None
        assert row["min"] is None and row["max"] is None

    def test_single_sample(self):
        hist = Histogram("h", (1.0, 2.0))
        hist.observe(1.5)
        assert hist.count == 1
        assert hist.sum == 1.5
        assert hist.min == hist.max == 1.5
        # sample lands in the (1, 2] bucket; percentile reports its
        # upper edge
        assert hist.counts == [0, 1, 0]
        assert hist.percentile(50) == 2.0

    def test_le_semantics_on_bucket_edges(self):
        # Prometheus buckets are "less than or equal": a sample exactly
        # on an edge belongs to that edge's bucket
        hist = Histogram("h", (1.0, 2.0))
        hist.observe(1.0)
        hist.observe(2.0)
        assert hist.counts == [1, 1, 0]

    def test_overflow_bucket_and_exact_max(self):
        hist = Histogram("h", (1.0, 2.0))
        hist.observe(99.0)
        assert hist.counts == [0, 0, 1]
        # overflow percentile reports the tracked maximum, not an edge
        assert hist.percentile(99) == 99.0
        assert hist.max == 99.0

    def test_edges_must_be_increasing_and_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0))

    def test_reintern_with_different_edges_raises(self):
        registry = MetricRegistry()
        registry.histogram("h", (1.0, 2.0))
        assert registry.histogram("h") is registry.histogram("h")
        with pytest.raises(ValueError):
            registry.histogram("h", (3.0, 4.0))

    def test_mean_is_exact_despite_buckets(self):
        hist = Histogram("h", (1.0,))
        for value in (0.25, 0.75, 5.0):
            hist.observe(value)
        assert hist.mean == pytest.approx(2.0)


class TestNullRegistry:
    def test_disabled_and_retains_nothing(self):
        registry = NullRegistry()
        assert registry.enabled is False
        counter = registry.counter("x")
        counter.inc(7)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert registry.counter_value("x") == 0

    def test_counters_still_count(self):
        # components read their own counters back (fastpath_stats,
        # distfield_stats) — a null counter that dropped increments
        # would break them
        counter = NullRegistry().counter("gate.memo_hits")
        counter.inc()
        counter.inc()
        assert counter.value == 2

    def test_handles_are_independent(self):
        registry = NullRegistry()
        first = registry.counter("x")
        second = registry.counter("x")
        first.inc()
        assert second.value == 0

    def test_histogram_is_shared_noop(self):
        registry = NullRegistry()
        hist = registry.histogram("h")
        assert isinstance(hist, NullHistogram)
        assert hist is registry.histogram("other")
        hist.observe(1.0)
        assert hist.count == 0
        assert hist.percentile(50) is None


class TestTracer:
    def test_nesting_sets_parentage(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # completion order
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration

    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", origins=3) as active:
            active.set("misses", 1)
        (span,) = tracer.spans
        assert span.attrs == {"origins": 3, "misses": 1}

    def test_exception_marks_error_and_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.attrs["error"] is True
        assert span.duration is not None

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        with tracer.span("a", k=1):
            pass
        stream = io.StringIO()
        assert write_spans(tracer, stream) == 1
        records = list(read_spans(io.StringIO(stream.getvalue())))
        assert records == tracer.as_records()
        assert records[0]["name"] == "a"
        assert records[0]["attrs"] == {"k": 1}

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        first = tracer.span("x")
        second = tracer.span("y", attr=1)
        assert first is second  # shared no-op context manager
        with first:
            pass
        assert len(tracer) == 0
        assert tracer.as_records() == []


class TestObservabilityBundle:
    def test_disabled_singleton(self):
        assert DISABLED.enabled is False
        assert isinstance(DISABLED.registry, NullRegistry)
        assert isinstance(DISABLED.tracer, NullTracer)

    def test_enabled_factory(self):
        obs = enabled()
        assert obs.enabled is True
        obs.registry.counter("x").inc()
        assert obs.snapshot()["metrics"]["counters"] == {"x": 1}


class TestExport:
    def _registry(self) -> MetricRegistry:
        registry = MetricRegistry()
        registry.counter("admit.attempts").inc(5)
        registry.gauge("queue.depth").set(2)
        hist = registry.histogram("phase.mapping.seconds", (0.001, 0.01))
        for value in (0.0005, 0.005, 0.5):
            hist.observe(value)
        return registry

    def test_snapshot_envelope(self):
        payload = snapshot(self._registry(), {"policy": "fifo"})
        assert payload["schema"] == SNAPSHOT_SCHEMA
        assert payload["context"] == {"policy": "fifo"}
        assert payload["metrics"]["counters"]["admit.attempts"] == 5

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "snap.json"
        written = write_snapshot(self._registry(), str(path), {"seed": 0})
        assert load_snapshot(str(path)) == written

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "something/else"}')
        with pytest.raises(ValueError, match="not a repro.obs snapshot"):
            load_snapshot(str(path))

    def test_diff_reports_only_changes(self):
        registry = self._registry()
        before = snapshot(registry)
        registry.counter("admit.attempts").inc(2)
        registry.histogram("phase.mapping.seconds").observe(0.002)
        after = snapshot(registry)
        delta = diff_snapshots(before, after)
        assert delta["counters"] == {
            "admit.attempts": {"before": 5, "after": 7, "delta": 2},
        }
        assert delta["gauges"] == {}  # unchanged gauge omitted
        hist = delta["histograms"]["phase.mapping.seconds"]
        assert hist["count_delta"] == 1
        assert hist["sum_delta"] == pytest.approx(0.002)

    def test_diff_of_identical_snapshots_is_empty(self):
        payload = snapshot(self._registry())
        delta = diff_snapshots(payload, payload)
        assert delta == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_prometheus_round_trip(self):
        text = to_prometheus(self._registry())
        parsed = parse_prometheus(text)
        assert parsed["types"]["repro_admit_attempts_total"] == "counter"
        assert parsed["types"]["repro_queue_depth"] == "gauge"
        assert (
            parsed["types"]["repro_phase_mapping_seconds"] == "histogram"
        )
        samples = parsed["samples"]
        assert samples["repro_admit_attempts_total"] == 5
        assert samples["repro_queue_depth"] == 2
        # cumulative le buckets: 1 sample <= 0.001, 2 <= 0.01, 3 total
        prefix = "repro_phase_mapping_seconds"
        assert samples[f'{prefix}_bucket{{le="0.001"}}'] == 1
        assert samples[f'{prefix}_bucket{{le="0.01"}}'] == 2
        assert samples[f'{prefix}_bucket{{le="+Inf"}}'] == 3
        assert samples[f"{prefix}_count"] == 3
        assert samples[f"{prefix}_sum"] == pytest.approx(0.5055)

    def test_prometheus_of_empty_registry_is_empty(self):
        assert to_prometheus(MetricRegistry()) == ""


class TestStatsParity:
    """The dedup satellite: rewired call sites must be byte-identical."""

    def _reference_percentile(self, values, q):
        # the pre-refactor inline implementation, verbatim
        if not values:
            return math.nan
        ordered = sorted(values)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def test_percentile_matches_the_original_inline_version(self):
        cases = [
            [0.5], [3.0, 1.0, 2.0], list(range(100)),
            [0.1] * 7 + [9.9], [5.0, 5.0, 5.0],
        ]
        for values in cases:
            for q in (0, 1, 50, 95, 99, 100):
                assert percentile(values, q) == (
                    self._reference_percentile(values, q)
                )
        assert math.isnan(percentile([], 50))

    def test_sim_metrics_reexport_path_still_works(self):
        from repro.sim.metrics import percentile as reexported
        assert reexported is percentile

    def test_latency_summary_matches_the_old_service_metrics_row(self):
        samples = [0.004, 0.001, 0.009, 0.002]
        row = latency_summary(samples)
        assert row == {
            "count": 4,
            "p50_ms": self._reference_percentile(samples, 50) * 1000.0,
            "p95_ms": self._reference_percentile(samples, 95) * 1000.0,
            "p99_ms": self._reference_percentile(samples, 99) * 1000.0,
            "total_ms": sum(samples) * 1000.0,
        }

    def test_mean_matches_sum_over_len(self):
        values = [1.0, 2.0, 4.0]
        assert mean(values) == sum(values) / len(values)
        assert math.isnan(mean([]))

    def test_manager_metrics_means_unchanged(self):
        from repro.manager.layout import Phase
        from repro.manager.metrics import (
            AttemptRecord,
            SequenceRecorder,
            summarize_positions,
        )
        recorder = SequenceRecorder()
        recorder.records = [
            AttemptRecord(position=1, app_name="a", admitted=True,
                          hops_per_channel=2.0, fragmentation_after=0.1),
            AttemptRecord(position=1, app_name="b", admitted=True,
                          hops_per_channel=3.0, fragmentation_after=0.3),
            AttemptRecord(position=1, app_name="c", admitted=False,
                          failed_phase=Phase.MAPPING,
                          fragmentation_after=0.5),
        ]
        (summary,) = summarize_positions([recorder], positions=1)
        assert summary.mean_hops == (2.0 + 3.0) / 2
        assert summary.mean_fragmentation == (0.1 + 0.3 + 0.5) / 3

    def test_summarize_and_aggregator(self):
        agg = StatsAggregator()
        agg.extend("fifo", "wait", [1.0, 3.0])
        agg.add("fifo", "wait", 2.0)
        report = agg.report()
        row = report["fifo"]["wait"]
        assert row["count"] == 3
        assert row["mean"] == 2.0
        assert row["p50"] == 2.0
        assert summarize([])["mean"] is None
        assert summarize([])["p50"] is None


class TestDeterminismWithObservability:
    """Observability never feeds a decision: traces stay bit-identical."""

    def test_pinned_fixture_digest_unchanged_with_obs_enabled(self):
        from repro.sim import read_trace, run_recipe, trace_digest
        header, records = read_trace(
            FIXTURES / "pre_resilience_faults.jsonl"
        )
        obs = enabled()
        result = run_recipe(header, obs=obs)
        # same pinned digest as test_resilience.py's replay test — the
        # instrumented run reproduces the recorded decision stream
        # byte-for-byte
        assert trace_digest(result.trace) == (
            "084800d3b7979349606551c7ce927d1f"
            "1f0c166913b0930a352e2eabf6d7ef76"
        )
        assert trace_digest(result.trace) == trace_digest(records)
        # and the instrumentation actually observed the run
        dump = obs.registry.snapshot()
        assert dump["counters"]["admit.attempts"] > 0
        assert dump["counters"]["service.offered"] > 0
        assert len(obs.tracer) > 0

    def test_instrumented_run_matches_bare_run(self):
        from repro.sim import build_recipe, run_recipe, trace_digest
        recipe = build_recipe(duration=10.0, seed=7, policy="fifo",
                              rate_scale=6.0, faults=1)
        bare = run_recipe(recipe)
        instrumented = run_recipe(recipe, obs=enabled())
        assert trace_digest(bare.trace) == trace_digest(
            instrumented.trace
        )
        # summaries match except the wall-clock phase latencies, which
        # legitimately vary run to run
        bare_summary = bare.metrics.summary()
        instrumented_summary = instrumented.metrics.summary()
        bare_summary.pop("phase_latency")
        instrumented_summary.pop("phase_latency")
        assert bare_summary == instrumented_summary


class TestServiceIntegration:
    def _run(self, obs=None, **overrides):
        from repro.sim import build_recipe, run_recipe
        recipe = build_recipe(duration=10.0, seed=3, policy="fifo",
                              rate_scale=6.0, **overrides)
        return run_recipe(recipe, obs=obs)

    def test_service_counters_mirror_metrics(self):
        obs = enabled()
        result = self._run(obs=obs)
        counters = obs.registry.snapshot()["counters"]
        metrics = result.metrics
        assert counters["service.offered"] == metrics.offered
        assert counters["service.admitted"] == metrics.admitted
        assert counters["service.departed"] == metrics.departed
        assert counters["service.dropped"] == metrics.dropped
        assert counters["service.queued"] == metrics.queued
        assert counters["admit.admitted"] >= metrics.admitted

    def test_phase_histograms_mirror_phase_latencies(self):
        obs = enabled()
        result = self._run(obs=obs)
        histograms = obs.registry.snapshot()["histograms"]
        for phase, samples in result.metrics.phase_latencies.items():
            row = histograms[f"phase.{phase}.seconds"]
            assert row["count"] == len(samples)
            assert row["sum"] == pytest.approx(sum(samples))

    def test_result_carries_the_observability_bundle(self):
        obs = enabled()
        assert self._run(obs=obs).observability is obs
        assert self._run().observability is DISABLED

    def test_stats_read_through_works_without_observability(self):
        # the deprecation-compat satellite: the old attribute names on
        # fastpath_stats / distfield_stats still read correctly with
        # the default (null) registry
        result = self._run()
        assert result.fastpath_stats["gate_passes"] > 0
        assert result.distfield_stats["fetches"] > 0


class TestObsCli:
    def _simulate(self, tmp_path, name="m.json", extra=()):
        from repro.cli import main
        path = tmp_path / name
        code = main([
            "sim", "--duration", "10", "--rate-scale", "6",
            "--metrics-out", str(path), *extra,
        ])
        assert code == 0
        return path

    def test_sim_writes_snapshot_and_spans(self, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        path = self._simulate(
            tmp_path, extra=("--trace-spans", str(spans))
        )
        out = capsys.readouterr().out
        assert "metrics snapshot" in out
        assert "spans" in out
        payload = load_snapshot(str(path))
        assert payload["schema"] == SNAPSHOT_SCHEMA
        assert payload["context"]["policy"] == "fifo"
        assert payload["metrics"]["counters"]["service.offered"] > 0
        names = {record["name"] for record in read_spans(str(spans))}
        assert "admit" in names
        assert "phase.binding" in names

    def test_obs_show(self, tmp_path, capsys):
        from repro.cli import main
        path = self._simulate(tmp_path)
        capsys.readouterr()
        assert main(["obs", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "service.offered" in out
        assert "phase.binding.seconds" in out

    def test_obs_diff(self, tmp_path, capsys):
        from repro.cli import main
        first = self._simulate(tmp_path, "a.json")
        second = self._simulate(
            tmp_path, "b.json", extra=("--seed", "9")
        )
        capsys.readouterr()
        assert main(["obs", "diff", str(first), str(second)]) == 0
        out = capsys.readouterr().out
        assert "service.offered" in out
        assert "->" in out

    def test_obs_diff_identical(self, tmp_path, capsys):
        from repro.cli import main
        path = self._simulate(tmp_path)
        capsys.readouterr()
        assert main(["obs", "diff", str(path), str(path)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_obs_show_rejects_non_snapshot(self, tmp_path, capsys):
        from repro.cli import main
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert main(["obs", "show", str(bad)]) == 2
