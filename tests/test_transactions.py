"""Property-style tests of the transaction journal.

The central invariant: for ANY interleaving of occupy / vacate /
reserve / release / fault-inject / heal operations, wrapping the batch
in ``state.transaction()`` and aborting restores exactly the state the
legacy ``snapshot()``/``restore()`` pair restores — and committing it
leaves exactly the state plain application leaves.
"""

from __future__ import annotations

import random

import pytest

from repro.arch import (
    AllocationError,
    AllocationState,
    ResourceVector,
    mesh,
)

REQ = ResourceVector(cycles=20, memory=4)


class _Abort(Exception):
    """Sentinel raised to trigger a transaction rollback."""


def _random_ops(rng: random.Random, state: AllocationState, count: int) -> list:
    """Generate ``count`` applicable operations by trial against ``state``.

    The returned descriptors replay deterministically on any state
    that has seen the same history.
    """
    platform = state.platform
    elements = [e.name for e in platform.elements]
    links = [(link.a.name, link.b.name) for link in platform.links]
    ops: list[tuple] = []
    placed: list[tuple[str, str]] = []
    routed: list[tuple[str, str]] = []
    serial = 0
    while len(ops) < count:
        choice = rng.random()
        if choice < 0.35:
            element = rng.choice(elements)
            task = f"t{serial}"
            serial += 1
            try:
                state.occupy(element, "app", task, REQ)
            except AllocationError:
                continue
            placed.append(("app", task))
            ops.append(("occupy", element, "app", task))
        elif choice < 0.5 and placed:
            app, task = placed.pop(rng.randrange(len(placed)))
            state.vacate(app, task)
            ops.append(("vacate", app, task))
        elif choice < 0.65:
            a, b = rng.choice(links)
            element = rng.choice(elements)
            channel = f"c{serial}"
            serial += 1
            path = [a, b]
            try:
                state.reserve_route("app", channel, path, 5.0)
            except AllocationError:
                continue
            routed.append(("app", channel))
            ops.append(("reserve", "app", channel, tuple(path)))
        elif choice < 0.75 and routed:
            app, channel = routed.pop(rng.randrange(len(routed)))
            state.release_route(app, channel)
            ops.append(("release", app, channel))
        elif choice < 0.85:
            element = rng.choice(elements)
            if rng.random() < 0.5:
                state.fail_element(element)
                ops.append(("fail_element", element))
            else:
                state.heal_element(element)
                ops.append(("heal_element", element))
        else:
            a, b = rng.choice(links)
            if rng.random() < 0.5:
                state.fail_link(a, b)
                ops.append(("fail_link", a, b))
            else:
                state.heal_link(a, b)
                ops.append(("heal_link", a, b))
    return ops


def _apply(state: AllocationState, op: tuple) -> None:
    kind = op[0]
    if kind == "occupy":
        state.occupy(op[1], op[2], op[3], REQ)
    elif kind == "vacate":
        state.vacate(op[1], op[2])
    elif kind == "reserve":
        state.reserve_route(op[1], op[2], list(op[3]), 5.0)
    elif kind == "release":
        state.release_route(op[1], op[2])
    elif kind == "fail_element":
        state.fail_element(op[1])
    elif kind == "heal_element":
        state.heal_element(op[1])
    elif kind == "fail_link":
        state.fail_link(op[1], op[2])
    elif kind == "heal_link":
        state.heal_link(op[1], op[2])
    else:  # pragma: no cover - test bug
        raise AssertionError(f"unknown op {op}")


@pytest.mark.parametrize("seed", range(12))
def test_abort_equals_snapshot_restore(seed):
    """Rolled-back transaction == legacy snapshot/restore, any interleaving."""
    rng = random.Random(seed)
    scratch = AllocationState(mesh(3, 3))
    prefix = _random_ops(rng, scratch, 6)     # non-empty starting state
    batch = _random_ops(rng, scratch, 10)     # the aborted batch

    state_tx = AllocationState(mesh(3, 3))
    state_legacy = AllocationState(mesh(3, 3))
    for op in prefix:
        _apply(state_tx, op)
        _apply(state_legacy, op)

    with pytest.raises(_Abort):
        with state_tx.transaction():
            for op in batch:
                _apply(state_tx, op)
            raise _Abort()

    snapshot = state_legacy.snapshot()
    for op in batch:
        _apply(state_legacy, op)
    state_legacy.restore(snapshot)

    assert state_tx.snapshot() == state_legacy.snapshot()


@pytest.mark.parametrize("seed", range(6))
def test_commit_equals_plain_application(seed):
    """A committed transaction leaves exactly the plainly-applied state."""
    rng = random.Random(1000 + seed)
    scratch = AllocationState(mesh(3, 3))
    ops = _random_ops(rng, scratch, 12)

    state_tx = AllocationState(mesh(3, 3))
    with state_tx.transaction():
        for op in ops:
            _apply(state_tx, op)

    state_plain = AllocationState(mesh(3, 3))
    for op in ops:
        _apply(state_plain, op)

    assert state_tx.snapshot() == state_plain.snapshot()
    assert not state_tx.in_transaction()


def test_mid_transaction_exception_rolls_back_completely():
    state = AllocationState(mesh(3, 3))
    state.occupy("dsp_0_0", "resident", "t0", REQ)
    baseline = state.snapshot()
    with pytest.raises(AllocationError):
        with state.transaction():
            state.occupy("dsp_0_1", "app", "t1", REQ)
            state.reserve_route(
                "app", "c0", ["dsp_0_1", "r_0_1", "r_0_0", "dsp_0_0"], 5.0
            )
            state.fail_element("dsp_2_2")
            # blows up: dsp_0_0 cannot host another near-full task
            state.occupy("dsp_0_0", "app", "t2", ResourceVector(cycles=99))
    assert state.snapshot() == baseline
    assert state.utilization() == pytest.approx(REQ.total() / (9 * 132))


def test_nested_transaction_rolls_back_inner_only():
    state = AllocationState(mesh(3, 3))
    with state.transaction():
        state.occupy("dsp_0_0", "app", "outer", REQ)
        with pytest.raises(_Abort):
            with state.transaction():
                state.occupy("dsp_0_1", "app", "inner", REQ)
                raise _Abort()
        assert state.element_of("app", "inner") is None
        assert state.element_of("app", "outer") == "dsp_0_0"
    assert state.element_of("app", "outer") == "dsp_0_0"


def test_savepoint_partial_rollback():
    state = AllocationState(mesh(3, 3))
    with state.transaction():
        state.occupy("dsp_0_0", "app", "kept", REQ)
        mark = state.savepoint()
        state.occupy("dsp_0_1", "app", "undone", REQ)
        state.fail_element("dsp_2_2")
        state.rollback_to(mark)
        assert state.element_of("app", "undone") is None
        assert not state.is_failed("dsp_2_2")
    assert state.element_of("app", "kept") == "dsp_0_0"


def test_savepoint_requires_open_transaction():
    state = AllocationState(mesh(3, 3))
    with pytest.raises(AllocationError):
        state.savepoint()
    with pytest.raises(AllocationError):
        state.rollback_to(0)


def test_restore_inside_transaction_rejected():
    state = AllocationState(mesh(3, 3))
    snapshot = state.snapshot()
    with state.transaction():
        with pytest.raises(AllocationError):
            state.restore(snapshot)


def test_wear_rolls_back_with_the_transaction():
    """Wear survives releases but an aborted attempt never happened."""
    state = AllocationState(mesh(3, 3))
    state.occupy("dsp_0_0", "app", "t0", REQ)
    state.vacate("app", "t0")
    assert state.wear("dsp_0_0") == 1
    with pytest.raises(_Abort):
        with state.transaction():
            state.occupy("dsp_0_0", "app", "t1", REQ)
            assert state.wear("dsp_0_0") == 2
            raise _Abort()
    assert state.wear("dsp_0_0") == 1


def test_float_bandwidth_rollback_is_bit_exact():
    """Undo restores the exact pre-mutation ledger values: inverting
    the arithmetic ((1.1 + 2.2) - 2.2 != 1.1) would leave float drift
    that a snapshot restore does not."""
    path = ["dsp_0_0", "r_0_0", "r_0_1", "dsp_0_1"]
    state = AllocationState(mesh(3, 3))
    state.reserve_route("resident", "base", path, 1.1)
    baseline = state.snapshot()
    with pytest.raises(_Abort):
        with state.transaction():
            state.reserve_route("app", "drift", path, 2.2)
            raise _Abort()
    assert state.snapshot() == baseline
    # exact equality, not approx: the ledger must be bit-identical
    assert state.bandwidth_free("r_0_0", "r_0_1") == 100.0 - 1.1


def test_utilization_is_maintained_incrementally():
    state = AllocationState(mesh(3, 3))
    element = state.platform.element("dsp_0_0")
    assert state.utilization() == 0.0
    state.occupy(element, "app", "t", element.capacity)
    assert state.utilization() == pytest.approx(1 / 9)
    with pytest.raises(_Abort):
        with state.transaction():
            other = state.platform.element("dsp_1_1")
            state.occupy(other, "app", "t2", other.capacity)
            assert state.utilization() == pytest.approx(2 / 9)
            raise _Abort()
    assert state.utilization() == pytest.approx(1 / 9)
    state.vacate("app", "t")
    assert state.utilization() == 0.0


class TestNestedTransactionCaches:
    """AvailabilityCache + capacity-epoch rewind under *nested*
    transactions with interleaved savepoint/rollback_to — the edge
    cases the fast-path tests only assert for flat transactions."""

    def _impl(self, cycles=60):
        from repro.apps import dsp_implementation

        return dsp_implementation(f"i{cycles}", cycles=cycles)

    def _assert_cache_matches_scan(self, state, impl):
        cached = [e.name for e in state.availability.available(impl)]
        brute = [
            e.name
            for e in state.platform.elements
            if not state.is_failed(e)
            and impl.requirement.fits_in(state.free(e))
            and impl.runs_on(e)
        ]
        assert cached == brute

    def test_epoch_rewind_through_nested_scopes(self):
        state = AllocationState(mesh(3, 3))
        impl = self._impl()
        outer_epoch = state.epoch

        class Boom(RuntimeError):
            pass

        with state.transaction():
            state.occupy("dsp_0_0", "a", "t0", ResourceVector(cycles=50))
            mid_epoch = state.epoch
            assert mid_epoch == outer_epoch + 1
            mark = state.savepoint()
            state.occupy("dsp_0_1", "a", "t1", ResourceVector(cycles=50))
            self._assert_cache_matches_scan(state, impl)
            with pytest.raises(Boom):
                with state.transaction():  # nested scope
                    state.occupy(
                        "dsp_0_2", "a", "t2", ResourceVector(cycles=50)
                    )
                    inner_mark = state.savepoint()
                    state.fail_element("dsp_1_0")
                    self._assert_cache_matches_scan(state, impl)
                    state.rollback_to(inner_mark)
                    assert state.epoch == mid_epoch + 2
                    self._assert_cache_matches_scan(state, impl)
                    raise Boom()
            # the nested rollback undid only the inner scope
            assert state.epoch == mid_epoch + 1
            self._assert_cache_matches_scan(state, impl)
            state.rollback_to(mark)
            assert state.epoch == mid_epoch
            self._assert_cache_matches_scan(state, impl)
        assert state.epoch == mid_epoch  # outer scope committed
        self._assert_cache_matches_scan(state, impl)

    def test_epoch_collision_across_nested_rollbacks_is_harmless(self):
        # entries stamped at an uncommitted epoch must never be served
        # after a rollback re-reaches that epoch value with different
        # state — here through two *nested* rolled-back scopes
        state = AllocationState(mesh(2, 2))
        impl = self._impl(90)
        names = [e.name for e in state.platform.elements]
        state.occupy(names[0], "a", "t0", ResourceVector(cycles=50))

        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            with state.transaction():
                state.occupy(names[1], "a", "t1", ResourceVector(cycles=50))
                with pytest.raises(Boom):
                    with state.transaction():
                        state.occupy(
                            names[2], "a", "t2", ResourceVector(cycles=50)
                        )
                        count, first = state.availability.summary(impl)
                        assert count == 1 and first.name == names[3]
                        raise Boom()
                count, _first = state.availability.summary(impl)
                assert count == 2
                raise Boom()
        # same epoch values are now re-reached with different history
        state.occupy(names[3], "b", "t", ResourceVector(cycles=50))
        state.occupy(names[1], "b", "t2", ResourceVector(cycles=50))
        count, first = state.availability.summary(impl)
        assert count == 1 and first.name == names[2]
        self._assert_cache_matches_scan(state, impl)

    def test_interleaved_savepoints_restore_aggregates_bit_exactly(self):
        rng = random.Random(31)
        state = AllocationState(mesh(3, 3))
        impl = self._impl(40)
        elements = [e.name for e in state.platform.elements]
        with state.transaction():
            checkpoints = []
            for step in range(40):
                roll = rng.random()
                if roll < 0.45:
                    try:
                        state.occupy(
                            rng.choice(elements), "app", f"t{step}",
                            ResourceVector(cycles=rng.randint(5, 40)),
                        )
                    except AllocationError:
                        pass
                elif roll < 0.6:
                    state.fail_element(rng.choice(elements))
                elif roll < 0.7:
                    state.heal_element(rng.choice(elements))
                elif roll < 0.85 or not checkpoints:
                    checkpoints.append((
                        state.savepoint(), state.epoch,
                        state.aggregate_free(),
                        [e.name for e in state.availability.available(impl)],
                    ))
                else:
                    mark, epoch, agg, avail = checkpoints.pop(
                        rng.randrange(len(checkpoints))
                    )
                    state.rollback_to(mark)
                    # later checkpoints are now invalid marks
                    checkpoints = [
                        c for c in checkpoints if c[0] <= mark
                    ]
                    assert state.epoch == epoch
                    assert state.aggregate_free() == agg
                    assert [
                        e.name
                        for e in state.availability.available(impl)
                    ] == avail
                self._assert_cache_matches_scan(state, impl)
