"""Unit tests for the allocation state (occupancy, routes, faults,
fragmentation, snapshots)."""

from __future__ import annotations

import pytest

from repro.arch import (
    AllocationError,
    AllocationState,
    ResourceVector,
    TopologyError,
    mesh,
)

REQ = ResourceVector(cycles=30, memory=8)


class TestOccupancy:
    def test_occupy_reduces_free(self, state3x3):
        before = state3x3.free("dsp_0_0")
        state3x3.occupy("dsp_0_0", "app", "t0", REQ)
        after = state3x3.free("dsp_0_0")
        assert after == before - REQ

    def test_vacate_restores_free(self, state3x3):
        before = state3x3.free("dsp_0_0")
        state3x3.occupy("dsp_0_0", "app", "t0", REQ)
        state3x3.vacate("app", "t0")
        assert state3x3.free("dsp_0_0") == before

    def test_over_allocation_rejected(self, state3x3):
        big = ResourceVector(cycles=90)
        state3x3.occupy("dsp_0_0", "app", "t0", big)
        with pytest.raises(AllocationError):
            state3x3.occupy("dsp_0_0", "app", "t1", big)

    def test_double_placement_rejected(self, state3x3):
        state3x3.occupy("dsp_0_0", "app", "t0", REQ)
        with pytest.raises(AllocationError):
            state3x3.occupy("dsp_0_1", "app", "t0", REQ)

    def test_vacate_unknown_task_rejected(self, state3x3):
        with pytest.raises(AllocationError):
            state3x3.vacate("app", "ghost")

    def test_is_available_tracks_free(self, state3x3):
        assert state3x3.is_available("dsp_0_0", ResourceVector(cycles=100))
        state3x3.occupy("dsp_0_0", "app", "t0", ResourceVector(cycles=60))
        assert not state3x3.is_available("dsp_0_0", ResourceVector(cycles=60))
        assert state3x3.is_available("dsp_0_0", ResourceVector(cycles=40))

    def test_occupants_and_placements(self, state3x3):
        state3x3.occupy("dsp_0_0", "a", "t0", REQ)
        state3x3.occupy("dsp_0_0", "b", "t0", REQ)
        assert len(state3x3.occupants("dsp_0_0")) == 2
        assert state3x3.element_of("a", "t0") == "dsp_0_0"
        assert state3x3.element_of("a", "nope") is None
        assert state3x3.placements_of("a") == {"t0": "dsp_0_0"}
        assert state3x3.applications() == ("a", "b")

    def test_unknown_element_rejected(self, state3x3):
        with pytest.raises(TopologyError):
            state3x3.occupy("ghost", "a", "t", REQ)

    def test_unfrozen_platform_rejected(self):
        from repro.arch.topology import Platform
        with pytest.raises(TopologyError):
            AllocationState(Platform("raw"))


class TestRoutes:
    def path(self):
        return ["dsp_0_0", "r_0_0", "r_0_1", "dsp_0_1"]

    def test_reserve_and_release(self, state3x3):
        reservation = state3x3.reserve_route("a", "c0", self.path(), 10.0)
        assert reservation.hops == 3
        assert state3x3.vc_free("r_0_0", "r_0_1") == 3
        assert state3x3.bandwidth_free("r_0_0", "r_0_1") == 90.0
        state3x3.release_route("a", "c0")
        assert state3x3.vc_free("r_0_0", "r_0_1") == 4
        assert state3x3.bandwidth_free("r_0_0", "r_0_1") == 100.0

    def test_direction_independence(self, state3x3):
        state3x3.reserve_route("a", "c0", self.path(), 10.0)
        # reverse direction unaffected
        assert state3x3.vc_free("r_0_1", "r_0_0") == 4

    def test_vc_exhaustion(self, state3x3):
        for index in range(4):
            state3x3.reserve_route("a", f"c{index}", self.path(), 1.0)
        with pytest.raises(AllocationError):
            state3x3.reserve_route("a", "c4", self.path(), 1.0)

    def test_bandwidth_exhaustion(self, state3x3):
        state3x3.reserve_route("a", "c0", self.path(), 70.0)
        with pytest.raises(AllocationError):
            state3x3.reserve_route("a", "c1", self.path(), 40.0)

    def test_failed_reservation_leaves_no_residue(self, state3x3):
        state3x3.reserve_route("a", "c0", self.path(), 70.0)
        before = state3x3.snapshot()
        with pytest.raises(AllocationError):
            state3x3.reserve_route("a", "c1", self.path(), 40.0)
        assert state3x3.snapshot() == before

    def test_duplicate_channel_rejected(self, state3x3):
        state3x3.reserve_route("a", "c0", self.path(), 1.0)
        with pytest.raises(AllocationError):
            state3x3.reserve_route("a", "c0", self.path(), 1.0)

    def test_single_node_path_rejected(self, state3x3):
        with pytest.raises(AllocationError):
            state3x3.reserve_route("a", "c0", ["dsp_0_0"], 1.0)

    def test_reservations_of(self, state3x3):
        state3x3.reserve_route("a", "c0", self.path(), 1.0)
        state3x3.reserve_route("b", "c0", self.path(), 1.0)
        assert len(state3x3.reservations_of("a")) == 1
        assert state3x3.reservation("a", "c0") is not None
        assert state3x3.reservation("a", "zz") is None


class TestReleaseApplication:
    def test_release_clears_everything(self, state3x3):
        baseline = state3x3.snapshot()
        state3x3.occupy("dsp_0_0", "a", "t0", REQ)
        state3x3.occupy("dsp_0_1", "a", "t1", REQ)
        state3x3.reserve_route(
            "a", "c0", ["dsp_0_0", "r_0_0", "r_0_1", "dsp_0_1"], 5.0
        )
        state3x3.release_application("a")
        after = state3x3.snapshot()
        # the wear and epoch odometers intentionally survive releases
        wear = after.pop("wear")
        baseline.pop("wear")
        epoch = after.pop("epoch")
        baseline.pop("epoch")
        assert after == baseline
        assert epoch == 6  # 2 occupies + 1 reserve + 2 vacates + 1 release
        assert wear["dsp_0_0"] == 1 and wear["dsp_0_1"] == 1

    def test_release_is_per_application(self, state3x3):
        state3x3.occupy("dsp_0_0", "a", "t0", REQ)
        state3x3.occupy("dsp_0_0", "b", "t0", REQ)
        state3x3.release_application("a")
        assert state3x3.placements_of("b") == {"t0": "dsp_0_0"}


class TestFaults:
    def test_failed_element_offers_nothing(self, state3x3):
        state3x3.fail_element("dsp_0_0")
        assert state3x3.free("dsp_0_0") == ResourceVector()
        assert not state3x3.is_available("dsp_0_0", ResourceVector(cycles=1))
        with pytest.raises(AllocationError):
            state3x3.occupy("dsp_0_0", "a", "t", REQ)

    def test_heal_element(self, state3x3):
        state3x3.fail_element("dsp_0_0")
        state3x3.heal_element("dsp_0_0")
        assert state3x3.is_available("dsp_0_0", REQ)

    def test_failed_link_blocks_traversal(self, state3x3):
        state3x3.fail_link("r_0_0", "r_0_1")
        assert state3x3.vc_free("r_0_0", "r_0_1") == 0
        assert not state3x3.can_traverse("r_0_0", "r_0_1", 1.0)
        state3x3.heal_link("r_0_0", "r_0_1")
        assert state3x3.vc_free("r_0_0", "r_0_1") == 4

    def test_fail_unknown_link_rejected(self, state3x3):
        with pytest.raises(TopologyError):
            state3x3.fail_link("r_0_0", "r_2_2")

    def test_failed_sets_exposed(self, state3x3):
        state3x3.fail_element("dsp_1_1")
        state3x3.fail_link("r_0_0", "r_0_1")
        assert state3x3.failed_elements == frozenset({"dsp_1_1"})
        assert frozenset(("r_0_0", "r_0_1")) in state3x3.failed_links


class TestFragmentation:
    def test_empty_platform_zero(self, state3x3):
        assert state3x3.external_fragmentation() == 0.0

    def test_full_platform_zero(self, state3x3):
        for element in state3x3.platform.elements:
            state3x3.occupy(element, "a", f"t_{element.name}", REQ)
        assert state3x3.external_fragmentation() == 0.0

    def test_single_used_corner(self, state3x3):
        state3x3.occupy("dsp_0_0", "a", "t", REQ)
        # corner has 2 adjacent elements; 12 adjacent pairs in a 3x3 mesh
        assert state3x3.external_fragmentation() == pytest.approx(100 * 2 / 12)

    def test_checkerboard_is_maximal(self):
        platform = mesh(2, 2)
        state = AllocationState(platform)
        state.occupy("dsp_0_0", "a", "t0", REQ)
        state.occupy("dsp_1_1", "a", "t1", REQ)
        assert state.external_fragmentation() == 100.0

    def test_utilization(self, state3x3):
        assert state3x3.utilization() == 0.0
        element = state3x3.platform.element("dsp_0_0")
        state3x3.occupy(element, "a", "t", element.capacity)
        assert state3x3.utilization() == pytest.approx(1 / 9)


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self, state3x3):
        state3x3.occupy("dsp_0_0", "a", "t0", REQ)
        snapshot = state3x3.snapshot()
        state3x3.occupy("dsp_0_1", "a", "t1", REQ)
        state3x3.reserve_route(
            "a", "c0", ["dsp_0_0", "r_0_0", "r_0_1", "dsp_0_1"], 5.0
        )
        state3x3.fail_element("dsp_2_2")
        state3x3.restore(snapshot)
        assert state3x3.placements_of("a") == {"t0": "dsp_0_0"}
        assert state3x3.reservations_of("a") == ()
        assert not state3x3.is_failed("dsp_2_2")

    def test_snapshot_is_isolated_from_later_changes(self, state3x3):
        snapshot = state3x3.snapshot()
        state3x3.occupy("dsp_0_0", "a", "t0", REQ)
        assert snapshot["placements"] == {}
