"""Tests for the BFS and Dijkstra routers and VC reservation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import AllocationState, ResourceVector, mesh
from repro.routing import BfsRouter, DijkstraRouter, RoutingError, release_routes
from tests.conftest import chain_app, diamond_app


def place(app, state, assignment):
    for task, element in assignment.items():
        state.occupy(element, app.name, task, ResourceVector(cycles=10))
    return assignment


class TestBfsRouter:
    def test_path_is_shortest(self, state3x3):
        router = BfsRouter()
        path = router.find_path(state3x3, "dsp_0_0", "dsp_2_2", 1.0)
        assert path is not None
        assert path[0] == "dsp_0_0" and path[-1] == "dsp_2_2"
        assert len(path) - 1 == state3x3.platform.hop_distance("dsp_0_0", "dsp_2_2")

    def test_path_respects_capacity(self, state3x3):
        # block the direct corridor: saturate r_0_0 -> r_0_1 (VCs)
        for index in range(4):
            state3x3.reserve_route("x", f"c{index}", ["r_0_0", "r_0_1"], 1.0)
        router = BfsRouter()
        path = router.find_path(state3x3, "dsp_0_0", "dsp_0_1", 1.0)
        assert path is not None
        assert ("r_0_0", "r_0_1") not in list(zip(path, path[1:]))

    def test_no_path_returns_none(self, state3x3):
        # wall off dsp_0_0 entirely (its single endpoint link, both
        # directions; endpoint links carry 16 virtual channels)
        for index in range(16):
            state3x3.reserve_route("x", f"a{index}", ["dsp_0_0", "r_0_0"], 1.0)
        router = BfsRouter()
        assert router.find_path(state3x3, "dsp_0_0", "dsp_2_2", 1.0) is None

    def test_bandwidth_constraint(self, state3x3):
        state3x3.reserve_route("x", "fat", ["dsp_0_0", "r_0_0"], 95.0)
        router = BfsRouter()
        assert router.find_path(state3x3, "dsp_0_0", "dsp_0_1", 10.0) is None
        assert router.find_path(state3x3, "dsp_0_0", "dsp_0_1", 5.0) is not None


class TestRouteApplication:
    def test_routes_all_channels(self, state3x3):
        app = diamond_app()
        placement = place(app, state3x3, {
            "a": "dsp_0_0", "b": "dsp_0_1", "c": "dsp_1_0", "d": "dsp_1_1",
        })
        result = BfsRouter().route_application(app, placement, state3x3)
        assert set(result.routes) == set(app.channels)
        assert result.total_hops > 0

    def test_local_channels_need_no_route(self, state3x3):
        app = chain_app(2)
        placement = place(app, state3x3, {"t0": "dsp_0_0", "t1": "dsp_0_0"})
        result = BfsRouter().route_application(app, placement, state3x3)
        assert result.routes == {}
        assert result.local_channels == ("t0->t1",)
        assert result.hops_per_channel() == 0.0

    def test_reservations_recorded_in_state(self, state3x3):
        app = chain_app(2)
        placement = place(app, state3x3, {"t0": "dsp_0_0", "t1": "dsp_0_1"})
        result = BfsRouter().route_application(app, placement, state3x3)
        assert state3x3.reservation(app.name, "t0->t1") is not None

    def test_unmapped_endpoint_rejected(self, state3x3):
        app = chain_app(2)
        with pytest.raises(RoutingError):
            BfsRouter().route_application(app, {"t0": "dsp_0_0"}, state3x3)

    def test_failure_names_channel(self, state3x3):
        app = chain_app(2)
        placement = place(app, state3x3, {"t0": "dsp_0_0", "t1": "dsp_2_2"})
        for index in range(16):
            state3x3.reserve_route("x", f"w{index}", ["dsp_0_0", "r_0_0"], 1.0)
        with pytest.raises(RoutingError) as info:
            BfsRouter().route_application(app, placement, state3x3)
        assert "t0->t1" in str(info.value)

    def test_fattest_channel_first(self, state3x3):
        app = diamond_app()
        # unequal bandwidths: verify ordering is by descending bandwidth
        channels = sorted(app.channels.values(), key=lambda c: c.name)
        ordered = sorted(app.channels.values(),
                         key=lambda c: (-c.bandwidth, c.name))
        assert ordered[0].bandwidth >= ordered[-1].bandwidth

    def test_release_routes(self, state3x3):
        app = chain_app(3)
        placement = place(app, state3x3, {
            "t0": "dsp_0_0", "t1": "dsp_0_1", "t2": "dsp_0_2",
        })
        result = BfsRouter().route_application(app, placement, state3x3)
        release_routes(state3x3, app.name, result)
        assert result.routes == {}
        assert state3x3.reservations_of(app.name) == ()


class TestDijkstraRouter:
    def test_matches_bfs_length_on_empty_platform(self, state3x3):
        bfs = BfsRouter()
        dijkstra = DijkstraRouter(congestion_weight=0.0)
        for target in ("dsp_0_1", "dsp_1_1", "dsp_2_2"):
            a = bfs.find_path(state3x3, "dsp_0_0", target, 1.0)
            b = dijkstra.find_path(state3x3, "dsp_0_0", target, 1.0)
            assert len(a) == len(b)

    def test_congestion_aware_detour(self):
        platform = mesh(1, 4)
        state = AllocationState(platform)
        # load the middle link heavily but not fully
        state.reserve_route("x", "load", ["r_0_1", "r_0_2"], 80.0)
        dijkstra = DijkstraRouter(congestion_weight=10.0)
        path = dijkstra.find_path(state, "dsp_0_1", "dsp_0_2", 5.0)
        # on a line there is no detour: it must still use the link
        assert ("r_0_1", "r_0_2") in list(zip(path, path[1:]))
        # on a mesh there is: verify it goes around
        state2 = AllocationState(mesh(2, 2))
        state2.reserve_route("x", "load", ["r_0_0", "r_0_1"], 80.0)
        detour = DijkstraRouter(congestion_weight=10.0).find_path(
            state2, "dsp_0_0", "dsp_0_1", 5.0
        )
        assert ("r_0_0", "r_0_1") not in list(zip(detour, detour[1:]))

    def test_negative_congestion_weight_rejected(self):
        with pytest.raises(ValueError):
            DijkstraRouter(congestion_weight=-1)

    def test_routes_application_like_bfs(self, state3x3):
        app = diamond_app()
        placement = place(app, state3x3, {
            "a": "dsp_0_0", "b": "dsp_0_1", "c": "dsp_1_0", "d": "dsp_1_1",
        })
        result = DijkstraRouter().route_application(app, placement, state3x3)
        assert set(result.routes) == set(app.channels)


@settings(max_examples=30, deadline=None)
@given(
    source=st.integers(0, 8),
    target=st.integers(0, 8),
    bandwidth=st.floats(min_value=0.1, max_value=50.0),
)
def test_property_paths_valid_and_minimal(source, target, bandwidth):
    """On an empty mesh, both routers return hop-minimal, link-valid
    paths between any element pair."""
    platform = mesh(3, 3)
    state = AllocationState(platform)
    names = [e.name for e in platform.elements]
    src, dst = names[source], names[target]
    if src == dst:
        return
    expected = platform.hop_distance(src, dst)
    for router in (BfsRouter(), DijkstraRouter(congestion_weight=0.0)):
        path = router.find_path(state, src, dst, bandwidth)
        assert path is not None
        assert len(path) - 1 == expected
        for a, b in zip(path, path[1:]):
            platform.link_between(a, b)  # raises if not a real link
