"""Tests for the pluggable mapping objectives (paper Section III:
energy, wear leveling, load balancing) and the wear odometer."""

from __future__ import annotations

import pytest

from repro.arch import AllocationState, ElementType, ResourceVector, mesh
from repro.binding import bind
from repro.core import (
    CommunicationObjective,
    CompositeCost,
    EnergyObjective,
    FragmentationObjective,
    LoadBalancingObjective,
    WearLevelingObjective,
    map_application,
)
from repro.core.search import SparseDistanceMatrix
from repro.manager import Kairos
from tests.conftest import chain_app, diamond_app


@pytest.fixture
def context(state3x3):
    """A minimal evaluation context: (app, app_id, task, ·, state, ·, ·)."""
    app = diamond_app()
    distances = SparseDistanceMatrix()
    return app, "app", "a", state3x3, {}, distances


class TestWearOdometer:
    def test_wear_starts_at_zero(self, state3x3):
        assert state3x3.wear("dsp_0_0") == 0

    def test_wear_accumulates_across_release(self, state3x3):
        req = ResourceVector(cycles=10)
        for round_index in range(3):
            state3x3.occupy("dsp_0_0", "a", f"t{round_index}", req)
            state3x3.vacate("a", f"t{round_index}")
        assert state3x3.wear("dsp_0_0") == 3
        assert state3x3.wear("dsp_0_1") == 0

    def test_wear_survives_snapshot_roundtrip(self, state3x3):
        req = ResourceVector(cycles=10)
        state3x3.occupy("dsp_0_0", "a", "t", req)
        snapshot = state3x3.snapshot()
        state3x3.occupy("dsp_0_1", "a", "u", req)
        state3x3.restore(snapshot)
        assert state3x3.wear("dsp_0_0") == 1
        assert state3x3.wear("dsp_0_1") == 0


class TestIndividualObjectives:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WearLevelingObjective(weight=-1)

    def test_zero_weight_short_circuits(self, context):
        app, app_id, task, state, placement, distances = context
        objective = WearLevelingObjective(weight=0.0)
        element = state.platform.element("dsp_0_0")
        assert objective(app, app_id, task, element, state, placement,
                         distances) == 0.0

    def test_wear_objective_prefers_fresh_elements(self, context):
        app, app_id, task, state, placement, distances = context
        state.occupy("dsp_0_0", "x", "t", ResourceVector(cycles=5))
        state.vacate("x", "t")
        objective = WearLevelingObjective(1.0)
        worn = objective(app, app_id, task,
                         state.platform.element("dsp_0_0"),
                         state, placement, distances)
        fresh = objective(app, app_id, task,
                          state.platform.element("dsp_1_1"),
                          state, placement, distances)
        assert worn > fresh

    def test_load_objective_tracks_utilization(self, context):
        app, app_id, task, state, placement, distances = context
        objective = LoadBalancingObjective(1.0)
        element = state.platform.element("dsp_0_0")
        empty = objective(app, app_id, task, element, state, placement,
                          distances)
        state.occupy("dsp_0_0", "x", "t", ResourceVector(cycles=50))
        half = objective(app, app_id, task, element, state, placement,
                         distances)
        assert empty == 0.0
        assert half > empty

    def test_energy_objective_prices_element_kind(self, context):
        app, app_id, task, state, placement, distances = context
        objective = EnergyObjective(1.0)
        objective.bind_requirements({"a": ResourceVector(cycles=40)})
        dsp_cost = objective.score(
            app, app_id, "a", state.platform.element("dsp_0_0"),
            state, placement, distances,
        )
        # a pretend GPP with the same capacity costs more per cycle
        from repro.arch import ProcessingElement
        from repro.arch.elements import default_capacity
        gpp = ProcessingElement("fake_arm", ElementType.GPP,
                                default_capacity(ElementType.GPP))
        gpp_cost = objective.score(
            app, app_id, "a", gpp, state, placement, distances,
        )
        assert gpp_cost > dsp_cost

    def test_energy_objective_counts_route_energy(self, context):
        app, app_id, _task, state, placement, distances = context
        objective = EnergyObjective(1.0, hop_energy=1.0)
        objective.bind_requirements({"b": ResourceVector(cycles=1)})
        placement = {"a": "dsp_0_0"}
        distances.record("dsp_0_1", "dsp_0_0", 3)
        distances.record("dsp_2_2", "dsp_0_0", 8)
        near = objective.score(app, app_id, "b",
                               state.platform.element("dsp_0_1"),
                               state, placement, distances)
        far = objective.score(app, app_id, "b",
                              state.platform.element("dsp_2_2"),
                              state, placement, distances)
        assert far > near

    def test_paper_objectives_delegate(self, context):
        app, app_id, task, state, placement, distances = context
        element = state.platform.element("dsp_0_0")
        comm = CommunicationObjective(2.0)
        frag = FragmentationObjective(1.0)
        assert comm(app, app_id, task, element, state, placement,
                    distances) == 0.0  # no mapped peers yet
        # corner elements yield a positive bonus -> negative cost
        assert frag(app, app_id, task, element, state, placement,
                    distances) < 0.0


class TestCompositeCost:
    def test_sum_of_parts(self, context):
        app, app_id, task, state, placement, distances = context
        element = state.platform.element("dsp_0_0")
        wear = WearLevelingObjective(1.0)
        load = LoadBalancingObjective(1.0)
        composite = CompositeCost([wear, load])
        total = composite(app, app_id, task, element, state, placement,
                          distances)
        parts = (
            wear(app, app_id, task, element, state, placement, distances)
            + load(app, app_id, task, element, state, placement, distances)
        )
        assert total == pytest.approx(parts)

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            CompositeCost([])

    def test_map_application_accepts_composite(self, state3x3):
        app = chain_app(3)
        binding = bind(app, state3x3)
        cost = CompositeCost([
            CommunicationObjective(1.0),
            EnergyObjective(0.5),
        ])
        result = map_application(app, binding.choice, state3x3, cost=cost)
        assert set(result.placement) == set(app.tasks)

    def test_wear_leveling_spreads_repeated_allocations(self):
        """Repeated allocate/release cycles under wear leveling must
        touch more distinct elements than pure communication mapping."""

        def churn(weights_factory):
            platform = mesh(3, 3)
            manager = Kairos(platform, weights=weights_factory(),
                             validation_mode="skip")
            touched = set()
            for round_index in range(8):
                layout = manager.allocate(chain_app(2, cycles=30),
                                          f"r{round_index}")
                touched.update(layout.placement.values())
                manager.release(layout.app_id)
            return len(touched)

        from repro.core import COMMUNICATION, MappingCost
        sticky = churn(lambda: MappingCost(COMMUNICATION))
        rotating = churn(lambda: CompositeCost([
            CommunicationObjective(1.0),
            WearLevelingObjective(50.0),
        ]))
        assert rotating > sticky

    def test_kairos_type_check(self):
        with pytest.raises(TypeError):
            Kairos(mesh(2, 2), weights="not a cost")
