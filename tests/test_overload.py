"""repro.overload: controllers, service integration, determinism, chaos.

Four layers of coverage:

* unit tests for each controller automaton in isolation — watermark
  hysteresis, retry token bucket, the circuit-breaker state machine,
  the brownout ladder and its levers on a real manager, and the
  distance-field forced-dormancy hook;
* service integration — deadline stamping and expiry as a distinct
  traced outcome, arrival-time shedding with priority protection,
  retry-budget denial, distinct interned reason codes in
  ``rejections_by_code``, breaker records in cluster traces;
* the determinism contract — all three digest-pinned legacy fixtures
  replay bit-identically with overload *absent*, and overload-enabled
  runs (including combined overload + fault-storm and cluster
  overload + shard-kill campaigns) are record/replay bit-identical;
* chaos drains — a 4x flash crowd over a storm campaign (unsharded)
  and over a shard kill (cluster) both drain to zero with the books
  intact.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.arch import mesh
from repro.cluster import (
    build_cluster_recipe,
    replay_cluster_trace,
    run_cluster_recipe,
)
from repro.manager.kairos import Kairos
from repro.overload import (
    BreakerPolicy,
    BreakerState,
    BrownoutController,
    BrownoutPolicy,
    CircuitBreaker,
    DeadlinePolicy,
    LEVEL_ACTIONS,
    OverloadConfig,
    RetryBudget,
    RetryBudgetPolicy,
    WatermarkController,
    WatermarkPolicy,
)
from repro.reasons import ReasonCode
from repro.resilience import ResilienceConfig
from repro.sim import (
    build_recipe,
    read_trace,
    replay_trace,
    run_recipe,
    trace_digest,
)

DATA = Path(__file__).parent / "data"
FIXTURES = [
    DATA / "pre_fastpath_fifo.jsonl",
    DATA / "pre_resilience_faults.jsonl",
]
CLUSTER_FIXTURE = DATA / "cluster_shard_kill.jsonl"


# -- config ------------------------------------------------------------------


class TestOverloadConfig:
    def test_defaults_enable_everything(self):
        config = OverloadConfig.defaults()
        assert config.deadline is not None
        assert config.watermark is not None
        assert config.retry_budget is not None
        assert config.breaker is not None
        assert config.brownout is not None

    def test_describe_omits_disabled_components(self):
        config = OverloadConfig(deadline=DeadlinePolicy(budget=5.0))
        assert set(config.describe()) == {"deadline"}

    def test_from_spec_passthrough(self):
        config = OverloadConfig.defaults()
        assert OverloadConfig.from_spec(None) is None
        assert OverloadConfig.from_spec(config) is config
        assert OverloadConfig.from_spec(config.describe()) == config

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlinePolicy(budget=0.0)
        with pytest.raises(ValueError):
            WatermarkPolicy(high=0.3, low=0.5)
        with pytest.raises(ValueError):
            RetryBudgetPolicy(capacity=0.0)
        with pytest.raises(ValueError):
            BreakerPolicy(min_samples=9, window=8)
        with pytest.raises(ValueError):
            BrownoutPolicy(max_level=7)

    def test_class_budget_override(self):
        policy = DeadlinePolicy(
            budget=25.0, class_budgets={"interactive": 5.0}
        )
        assert policy.budget_for("interactive") == 5.0
        assert policy.budget_for("batch") == 25.0


# -- watermark + retry budget ------------------------------------------------


class TestWatermark:
    def test_hysteresis_band(self):
        controller = WatermarkController(
            WatermarkPolicy(high=0.8, low=0.4, protect_priority=2)
        )
        assert controller.observe(7, 10) is None       # 0.7 < high
        assert controller.observe(8, 10) is True       # entered
        assert controller.observe(6, 10) is None       # inside the band
        assert controller.shedding
        assert controller.observe(4, 10) is False      # exited at low
        assert not controller.shedding
        assert controller.transitions == 2

    def test_protects_priority(self):
        controller = WatermarkController(
            WatermarkPolicy(high=0.5, low=0.2, protect_priority=2)
        )
        controller.observe(5, 10)
        assert controller.should_shed(0)
        assert controller.should_shed(1)
        assert not controller.should_shed(2)

    def test_zero_capacity_never_sheds(self):
        controller = WatermarkController(WatermarkPolicy())
        assert controller.observe(0, 0) is None
        assert not controller.shedding


class TestRetryBudget:
    def test_spends_then_denies(self):
        budget = RetryBudget(RetryBudgetPolicy(capacity=2.0, refill_rate=0.5))
        assert budget.grant(0.0)
        assert budget.grant(0.0)
        assert not budget.grant(0.0)
        assert budget.denied == 1

    def test_lazy_refill_capped(self):
        budget = RetryBudget(RetryBudgetPolicy(capacity=2.0, refill_rate=0.5))
        budget.grant(0.0)
        budget.grant(0.0)
        assert not budget.grant(1.0)   # 0.5 tokens refilled, < 1
        assert budget.grant(3.0)       # 1.5 by now
        # a long quiet period refills to capacity, never beyond
        budget.grant(1000.0)
        assert budget.tokens <= 2.0


# -- circuit breaker ---------------------------------------------------------


def tight_breaker(**overrides) -> CircuitBreaker:
    params = dict(window=4, failure_threshold=0.5, min_samples=2,
                  cooldown=10.0, half_open_probes=2)
    params.update(overrides)
    return CircuitBreaker(BreakerPolicy(**params))


class TestCircuitBreaker:
    def test_trips_on_failure_rate(self):
        breaker = tight_breaker()
        assert breaker.record_failure(1.0) is None        # 1/1 < min_samples
        assert breaker.record_failure(2.0) == "failure_rate"
        assert breaker.state is BreakerState.OPEN

    def test_successes_dilute_the_window(self):
        breaker = tight_breaker()
        for t in range(3):
            breaker.record_success(float(t))
        breaker.record_failure(3.0)
        # 1 failure / 4 outcomes = 0.25 < 0.5: still closed
        assert breaker.state is BreakerState.CLOSED

    def test_open_blocks_until_cooldown(self):
        breaker = tight_breaker()
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.allow(5.0) == (False, None)
        allowed, edge = breaker.allow(11.0)
        assert allowed and edge == "cooldown_elapsed"
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_probe_budget(self):
        breaker = tight_breaker(half_open_probes=2)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.allow(11.0)                  # first probe slot
        assert breaker.allow(11.5) == (True, None)   # second
        assert breaker.allow(12.0) == (False, None)  # budget spent

    def test_probe_success_closes(self):
        breaker = tight_breaker()
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.allow(11.0)
        assert breaker.record_success(11.5) == "probe_succeeded"
        assert breaker.state is BreakerState.CLOSED
        # and the window was cleared: one old-regime failure cannot
        # immediately re-trip
        assert breaker.record_failure(12.0) is None
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self):
        breaker = tight_breaker()
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.allow(11.0)
        assert breaker.record_failure(11.5) == "probe_failed"
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2


# -- brownout ----------------------------------------------------------------


class TestBrownout:
    def make(self, policy=None):
        manager = Kairos(mesh(4, 4))
        controller = BrownoutController(
            policy or BrownoutPolicy(high=0.8, low=0.2, step_up=2,
                                     step_down=2),
            [manager],
        )
        return manager, controller

    def test_escalation_needs_sustained_pressure(self):
        _, controller = self.make()
        assert controller.observe(0.9) == []
        assert controller.observe(0.5) == []     # band resets pressure
        assert controller.observe(0.9) == []
        assert controller.observe(0.9) == [(0, 1, "mapper_first_fit")]
        assert controller.level == 1

    def test_ladder_up_and_down(self):
        manager, controller = self.make()
        original_pipeline = manager.pipeline
        original_options = manager.mapping_options
        for _ in range(6):
            controller.observe(0.9)
        assert controller.level == 3
        assert controller.max_level_seen == 3
        assert manager.pipeline is not original_pipeline
        assert manager.mapping_options is not original_options
        transitions = []
        for _ in range(6):
            transitions.extend(controller.observe(0.1))
        assert controller.level == 0
        assert all(action == "restored" for _, _, action in transitions)
        # full unwind restores the original objects, not copies
        assert manager.pipeline is original_pipeline
        assert manager.mapping_options is original_options

    def test_level_two_caps_rings(self):
        manager, controller = self.make(
            BrownoutPolicy(high=0.8, low=0.2, step_up=1, step_down=1,
                           ring_cap=2)
        )
        controller.observe(0.9)
        controller.observe(0.9)
        assert controller.level == 2
        assert manager.mapping_options.max_rings == 2

    def test_degraded_pipeline_still_admits(self, chain4):
        manager, controller = self.make(
            BrownoutPolicy(high=0.8, low=0.2, step_up=1, step_down=1)
        )
        for _ in range(3):
            controller.observe(0.9)
        assert controller.level == 3
        decision = manager.controller.admit(chain4, "browned")
        assert decision.admitted
        manager.release("browned")

    def test_level_names_cover_ladder(self):
        assert set(LEVEL_ACTIONS) == {0, 1, 2, 3}


class TestForcedDormancy:
    def test_forced_engine_serves_no_probes_but_forced_fetches_work(self):
        manager = Kairos(mesh(4, 4), incremental=True)
        engine = manager._distfield
        assert engine is not None
        engine.forced_dormant = True
        assert engine.acquire((0,), True) is None
        # the force path (used by the field() helper) must keep working
        assert engine.acquire((0,), True, force=True) is not None
        engine.forced_dormant = False
        assert engine.acquire((0,), True) is not None


# -- service integration -----------------------------------------------------


def overload_recipe(**overrides):
    defaults = dict(
        platform="8x8", policy="fifo", duration=80.0, seed=3,
        rate_scale=6.0, overload=OverloadConfig.defaults(),
    )
    defaults.update(overrides)
    return build_recipe(**defaults)


class TestServiceIntegration:
    def test_watermark_sheds_and_protects_interactive(self):
        result = run_recipe(overload_recipe())
        summary = result.metrics.summary()
        assert summary["overload"]["shed_watermark"] > 0
        ratios = {
            name: stats["admission_ratio"]
            for name, stats in summary["per_class"].items()
        }
        assert ratios["interactive"] > ratios["batch"]
        # the code is interned end-to-end: drops ledger and trace
        assert result.metrics.drops["shed_watermark"] > 0
        sheds = [r for r in result.trace
                 if r["kind"] == "drop"
                 and r["reason"] == ReasonCode.SHED_WATERMARK]
        assert len(sheds) == summary["overload"]["shed_watermark"]
        modes = [r["mode"] for r in result.trace
                 if r["kind"] == "watermark"]
        assert modes and modes[0] == "shedding"

    def test_deadline_expiry_is_distinct_from_timeout(self):
        recipe = overload_recipe(
            policy="retry",
            overload=OverloadConfig(deadline=DeadlinePolicy(budget=4.0)),
        )
        result = run_recipe(recipe)
        expired = result.metrics.drops.get("deadline_expired", 0)
        assert expired > 0
        # expiry is its own interned outcome, never folded into the
        # pre-existing timeout bucket
        assert (result.metrics.rejections_by_code.get(
            "deadline_expired", 0) == expired)
        records = [r for r in result.trace
                   if r["kind"] == "drop"
                   and r["reason"] == ReasonCode.DEADLINE_EXPIRED]
        assert len(records) == expired

    def test_retry_budget_denials_traced(self):
        recipe = overload_recipe(
            policy="retry", seed=5,
            overload=OverloadConfig(
                retry_budget=RetryBudgetPolicy(capacity=4.0,
                                               refill_rate=0.1)
            ),
        )
        result = run_recipe(recipe)
        denied = result.metrics.drops.get("retry_budget_exhausted", 0)
        assert denied > 0
        assert (result.metrics.rejections_by_code.get(
            "retry_budget_exhausted", 0) == denied)

    def test_brownout_transitions_traced_and_replayable(self):
        result = run_recipe(overload_recipe(seed=3))
        transitions = [r for r in result.trace if r["kind"] == "brownout"]
        assert transitions
        assert result.metrics.brownout_transitions == len(transitions)
        assert result.metrics.max_brownout_level >= 1
        for record in transitions:
            assert record["action"] in (
                set(LEVEL_ACTIONS.values()) | {"restored"}
            )

    def test_overload_stats_snapshot(self):
        result = run_recipe(overload_recipe())
        stats = result.overload_stats
        assert set(stats) >= {"watermark", "retry_budget", "brownout"}
        plain = run_recipe(build_recipe(platform="6x6", duration=10.0))
        assert plain.overload_stats is None

    def test_reason_codes_are_interned(self):
        # the enum values are the exact strings in traces and ledgers
        assert ReasonCode.DEADLINE_EXPIRED == "deadline_expired"
        assert ReasonCode.SHED_WATERMARK == "shed_watermark"
        assert ReasonCode.RETRY_BUDGET_EXHAUSTED == "retry_budget_exhausted"
        assert ReasonCode.BREAKER_OPEN == "breaker_open"


# -- cluster breakers --------------------------------------------------------


def breaker_cluster_recipe(**overrides):
    defaults = dict(
        platform="12x12", shards=3, duration=120.0, seed=1,
        policy="fifo", rate_scale=4.0, kills=2, downtime=25.0,
        heartbeat={"storm_faults": 8},
        overload=dataclasses.replace(
            OverloadConfig.defaults(),
            breaker=BreakerPolicy(window=6, failure_threshold=0.5,
                                  min_samples=2, cooldown=8.0,
                                  half_open_probes=2),
        ),
    )
    defaults.update(overrides)
    return build_cluster_recipe(**defaults)


class TestClusterBreakers:
    def test_breaker_trips_during_detection_window(self):
        result = run_cluster_recipe(breaker_cluster_recipe())
        assert result.metrics.breaker_transitions > 0
        records = [r for r in result.trace if r["kind"] == "breaker"]
        assert len(records) == result.metrics.breaker_transitions
        opened = [r for r in records if r["state"] == "open"]
        assert opened and opened[0]["reason"] == "failure_rate"
        # every record names a real shard and a real automaton edge
        for record in records:
            assert record["shard"] in {"s0", "s1", "s2"}
            assert record["was"] != record["state"]

    def test_breaker_state_in_overload_stats(self):
        result = run_cluster_recipe(breaker_cluster_recipe())
        boards = result.overload_stats["breakers"]
        assert set(boards) == {"s0", "s1", "s2"}
        assert sum(board["opens"] for board in boards.values()) > 0

    def test_no_breakers_without_config(self):
        recipe = breaker_cluster_recipe()
        recipe.pop("overload")
        result = run_cluster_recipe(recipe)
        assert result.metrics.breaker_transitions == 0
        assert not [r for r in result.trace if r["kind"] == "breaker"]


# -- the determinism contract ------------------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize("fixture", FIXTURES)
    def test_legacy_fixtures_digest_identical(self, fixture):
        header, records = read_trace(fixture)
        assert "overload" not in header
        result = run_recipe(header)
        assert trace_digest(result.trace) == trace_digest(records)

    def test_legacy_cluster_fixture_digest_identical(self):
        header, records = read_trace(CLUSTER_FIXTURE)
        assert "overload" not in header
        result = run_cluster_recipe(header)
        assert trace_digest(result.trace) == trace_digest(records)

    def test_overload_run_replays_bit_identical(self, tmp_path):
        recipe = overload_recipe()
        path = tmp_path / "overload.jsonl"
        run_recipe(recipe, trace_path=path)
        identical, differences, _ = replay_trace(path)
        assert identical, differences[:3]

    def test_overload_plus_fault_storm_replays_bit_identical(
        self, tmp_path
    ):
        recipe = overload_recipe(
            faults=1, fault_mttr=12.0, fault_storm=1,
            resilience=ResilienceConfig(),
        )
        path = tmp_path / "overload_faults.jsonl"
        result = run_recipe(recipe, trace_path=path)
        assert result.metrics.faults_injected > 0
        identical, differences, _ = replay_trace(path)
        assert identical, differences[:3]

    def test_cluster_overload_plus_kill_replays_bit_identical(
        self, tmp_path
    ):
        recipe = breaker_cluster_recipe()
        path = tmp_path / "cluster_overload.jsonl"
        result = run_cluster_recipe(recipe, trace_path=path)
        assert result.metrics.breaker_transitions > 0
        identical, differences, _ = replay_cluster_trace(path)
        assert identical, differences[:3]

    def test_same_recipe_same_digest(self):
        recipe = overload_recipe()
        first = run_recipe(recipe)
        second = run_recipe(recipe)
        assert trace_digest(first.trace) == trace_digest(second.trace)


# -- chaos drains ------------------------------------------------------------


class TestChaosDrain:
    def test_flash_crowd_storm_drains_to_zero(self):
        recipe = build_recipe(
            platform="8x8", policy="retry", duration=80.0, seed=7,
            rate_scale=8.0, faults=1, fault_mttr=15.0, fault_storm=1,
            resilience=ResilienceConfig(),
            overload=OverloadConfig.defaults(),
        )
        result = run_recipe(recipe)
        assert result.post_drain_utilization == 0.0
        summary = result.metrics.summary()
        assert summary["faults"]["injected"] > 0
        # under the retry policy the queue stays shallow (rejected
        # offers re-enter through the retry path), so the token budget
        # is the shield that engages, not the watermark
        assert summary["overload"]["retry_budget_exhausted"] > 0

    def test_cluster_flash_crowd_kill_drains_to_zero(self):
        recipe = breaker_cluster_recipe(rate_scale=8.0, kills=1)
        result = run_cluster_recipe(recipe)
        # run_cluster_simulation asserts integrity + empty cluster on
        # drain internally; re-assert the headline numbers here
        assert result.post_drain_utilization == 0.0
        metrics = result.metrics
        assert metrics.departed > 0
        # every offer resolved one way or another: completed, still
        # draining at horizon, or refused at admission
        assert metrics.offered >= metrics.admitted
        assert metrics.admitted >= metrics.departed
