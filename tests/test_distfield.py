"""The incremental distance-field engine: flip log, fields, lockstep.

The engine's entire contract is *make the mapping search cheap across
attempts without changing a single decision*.  These tests pin it
from four sides:

* the state's link-traversability flip log records exactly the
  traversability changes, with undo appending reversing flips so a
  reader's parity count over its log suffix is always exact;
* a served field (rings, element rings, distances) is identical to a
  fresh live ring search against the same state — across random route
  churn, repairs, link faults, rollbacks and restores;
* the adaptive acquire serves clean/cold cycles, bypasses repair-heavy
  ones, and abandons the parity-convergence bet after a bounded number
  of stale sightings;
* gated end to end: churn digests and service traces (including fault
  injection and recovery) are bit-identical with ``incremental`` on
  and off, and the routing fast-fail raises exactly the error the path
  search would.
"""

from __future__ import annotations

import random

import pytest

from repro.arch import AllocationState, ResourceVector, mesh
from repro.core.distfield import _STALE_LIMIT, DistanceFieldEngine
from repro.core.search import RingSearch
from repro.experiments import ChurnConfig, churn_pool, run_admission_churn
from repro.routing.router import BfsRouter, RoutingError
from repro.sim import (
    SimulationConfig,
    default_traffic_classes,
    make_policy,
    run_simulation,
)

REQ = ResourceVector(cycles=10, memory=2)


def saturate_link(state: AllocationState, a: str, b: str, app="sat") -> int:
    """Reserve channels until link a—b has no free VC in either
    direction; returns the number of reservations made."""
    count = 0
    while state.vc_free(a, b) > 0:
        state.reserve_route(app, f"{a}>{b}#{count}", [a, b], 0.0)
        count += 1
    while state.vc_free(b, a) > 0:
        state.reserve_route(app, f"{b}>{a}#{count}", [b, a], 0.0)
        count += 1
    return count


def link_open(state: AllocationState, a: str, b: str) -> bool:
    """The engine's traversability predicate over endpoint names."""
    slot = state.platform.directed_slot(
        state.platform.node_id(a), state.platform.node_id(b)
    )
    return state.link_traversable(slot >> 1)


def search_transcript(state, origins, engine=None, max_advances=64):
    """Element-name stream + per-ring distances of one full search.

    With an engine, the origins' fields are acquired through the
    forcing :meth:`~repro.core.distfield.DistanceFieldEngine.field`
    first, so the search replays for certain (the adaptive acquire
    would otherwise be free to bypass and run live — correct, but not
    what an equivalence test wants to exercise).
    """
    if engine is not None:
        node_ids = state.platform._node_ids
        for origin in origins:
            engine.field(node_ids[origin])
    search = RingSearch(state, origins, engine=engine)
    if engine is not None:
        assert search._fields is not None  # freshly committed: served
    transcript = []
    for _ in range(max_advances):
        if search.exhausted:
            break
        elements = search.advance()
        transcript.append(tuple(e.name for e in elements))
    node_ids = state.platform._node_ids
    distances = {}
    for origin in search.origins:
        for node in state.platform.nodes:
            d = search.distances.get_ids(
                node_ids[origin], node_ids[node.name]
            )
            if d is not None:
                distances[(origin, node.name)] = d
    return transcript, distances, search.exhausted


class TestFlipLog:
    def test_saturating_reservation_flips_once(self):
        state = AllocationState(mesh(3, 3, virtual_channels=1))
        mark = state.link_flip_mark()
        assert link_open(state, "r_0_0", "r_0_1")
        state.reserve_route("a", "c0", ["r_0_0", "r_0_1"], 1.0)
        # forward direction saturated, reverse still free: no flip yet
        assert state.link_flip_mark() == mark
        state.reserve_route("a", "c1", ["r_0_1", "r_0_0"], 1.0)
        assert state.link_flip_mark() == mark + 1
        assert not link_open(state, "r_0_0", "r_0_1")
        # releasing one direction flips it back open
        state.release_route("a", "c1")
        assert state.link_flip_mark() == mark + 2
        assert link_open(state, "r_0_0", "r_0_1")

    def test_rollback_appends_reversing_flips(self):
        state = AllocationState(mesh(3, 3, virtual_channels=1))
        mark = state.link_flip_mark()

        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            with state.transaction():
                state.reserve_route("a", "c0", ["r_0_0", "r_0_1"], 1.0)
                state.reserve_route("a", "c1", ["r_0_1", "r_0_0"], 1.0)
                assert state.link_flip_mark() == mark + 1
                raise Boom()
        # history is monotone: the undo appended the reverse flip
        assert state.link_flip_mark() == mark + 2
        assert link_open(state, "r_0_0", "r_0_1")

    def test_fail_and_heal_link_flip(self):
        state = AllocationState(mesh(3, 3))
        mark = state.link_flip_mark()
        state.fail_link("r_0_0", "r_0_1")
        assert state.link_flip_mark() == mark + 1
        state.fail_link("r_0_0", "r_0_1")  # idempotent: no second flip
        assert state.link_flip_mark() == mark + 1
        state.heal_link("r_0_0", "r_0_1")
        assert state.link_flip_mark() == mark + 2

    def test_fail_of_saturated_link_does_not_flip(self):
        state = AllocationState(mesh(3, 3, virtual_channels=1))
        saturate_link(state, "r_0_0", "r_0_1")
        mark = state.link_flip_mark()
        state.fail_link("r_0_0", "r_0_1")  # was already a wall
        assert state.link_flip_mark() == mark
        state.heal_link("r_0_0", "r_0_1")  # still saturated: still a wall
        assert state.link_flip_mark() == mark

    def test_occupy_and_element_faults_never_flip(self):
        state = AllocationState(mesh(3, 3))
        mark = state.link_flip_mark()
        state.occupy("dsp_0_0", "a", "t", REQ)
        state.fail_element("dsp_1_1")
        state.heal_element("dsp_1_1")
        state.vacate("a", "t")
        assert state.link_flip_mark() == mark

    def test_restore_breaks_the_timeline(self):
        state = AllocationState(mesh(3, 3))
        snapshot = state.snapshot()
        mark = state.link_flip_mark()
        state.restore(snapshot)
        assert state.link_flip_mark() > mark

    def test_trim_raises_the_floor(self):
        state = AllocationState(mesh(3, 3, virtual_channels=1))
        for _ in range(4):
            state.reserve_route("a", "x0", ["r_0_0", "r_0_1"], 0.0)
            state.reserve_route("a", "x1", ["r_0_1", "r_0_0"], 0.0)
            state.release_route("a", "x0")
            state.release_route("a", "x1")
        mark = state.link_flip_mark()
        state.trim_link_flips(mark - 1)
        assert state.link_flip_mark() == mark
        assert state._flip_base == mark - 1



class TestFieldEquivalence:
    def test_replay_matches_live_search_on_fresh_state(self):
        state = AllocationState(mesh(4, 5))
        engine = DistanceFieldEngine(state)
        for origins in (["dsp_0_0"], ["dsp_0_0", "dsp_3_4"], ["dsp_1_2"]):
            live = search_transcript(state, origins)
            replay = search_transcript(state, origins, engine=engine)
            assert replay == live

    def test_replay_matches_live_under_random_churn(self):
        rng = random.Random(17)
        platform = mesh(4, 4, virtual_channels=1)
        state = AllocationState(platform)
        engine = DistanceFieldEngine(state)
        element_names = [e.name for e in platform.elements]
        router_pairs = [
            (link.a.name, link.b.name)
            for link in platform.links
            if link.a.name.startswith("r_") and link.b.name.startswith("r_")
        ]
        counter = 0
        for step in range(60):
            roll = rng.random()
            if roll < 0.4 and router_pairs:
                a, b = rng.choice(router_pairs)
                counter += 1
                try:
                    state.reserve_route("churn", f"c{counter}", [a, b], 0.0)
                except Exception:
                    pass
            elif roll < 0.6:
                keys = [k for k in state._reservations if k[0] == "churn"]
                if keys:
                    app, channel = keys[rng.randrange(len(keys))]
                    state.release_route(app, channel)
            elif roll < 0.75 and router_pairs:
                a, b = rng.choice(router_pairs)
                if rng.random() < 0.5:
                    state.fail_link(a, b)
                else:
                    state.heal_link(a, b)
            origins = rng.sample(element_names, rng.randint(1, 3))
            live = search_transcript(state, origins)
            # force=True inside field() keeps this deterministic: the
            # engine must serve (repairing or rebuilding as needed)
            replay = search_transcript(state, origins, engine=engine)
            assert replay == live, (step, origins)

    def test_field_repair_equals_recompute_after_saturation(self):
        state = AllocationState(mesh(4, 4, virtual_channels=1))
        engine = DistanceFieldEngine(state)
        origin = state.platform._node_ids["dsp_0_0"]
        field = engine.field(origin)
        while not field.complete:
            engine.ring(field, len(field.rings))
        depth = len(field.rings)
        assert depth > 3
        saturate_link(state, "r_2_2", "r_2_3")
        repaired = engine.field(origin)
        while not repaired.complete:
            engine.ring(repaired, len(repaired.rings))
        fresh_engine = DistanceFieldEngine(state)
        fresh = fresh_engine.field(origin)
        while not fresh.complete:
            fresh_engine.ring(fresh, len(fresh.rings))
        assert repaired.rings == fresh.rings
        assert repaired.row == fresh.row

    def test_closed_non_tree_edge_is_a_hit(self):
        state = AllocationState(mesh(4, 4, virtual_channels=1))
        engine = DistanceFieldEngine(state)
        origin = state.platform._node_ids["dsp_0_0"]
        field = engine.field(origin)
        while not field.complete:
            engine.ring(field, len(field.rings))
        # find a saturatable router link that is NOT a tree edge of
        # this field: parent[child] != other endpoint
        node_ids = state.platform._node_ids
        chosen = None
        for link in state.platform.links:
            a, b = link.a.name, link.b.name
            if not (a.startswith("r_") and b.startswith("r_")):
                continue
            ia, ib = node_ids[a], node_ids[b]
            da, db = field.row[ia], field.row[ib]
            if da < 0 or db < 0 or abs(da - db) != 1:
                continue
            child, parent_end = (ib, ia) if db > da else (ia, ib)
            if field.parent[child] != parent_end:
                chosen = (a, b)
                break
        assert chosen is not None, "mesh should have non-tree edges"
        hits = engine.stats.hits
        saturate_link(state, *chosen)
        engine.field(origin)
        assert engine.stats.hits == hits + 1  # served without repair

    def test_parity_cancellation_revalidates_without_repair(self):
        state = AllocationState(mesh(4, 4, virtual_channels=1))
        engine = DistanceFieldEngine(state)
        origin = state.platform._node_ids["dsp_0_0"]
        field = engine.field(origin)
        while not field.complete:
            engine.ring(field, len(field.rings))
        repairs = engine.stats.repairs
        saturate_link(state, "r_0_0", "r_0_1")  # a tree-edge wall
        # release everything: traversability returns to the exact
        # pre-saturation truth, and the flip parity cancels out
        for app, channel in list(state._reservations):
            state.release_route(app, channel)
        again = engine.field(origin)
        assert again is field
        assert engine.stats.repairs == repairs  # no repair was needed

    def test_rolled_back_flips_never_leave_a_stale_field(self):
        # a field read inside a transaction observes the transaction's
        # traversability; after rollback the reversing flips mark it
        # dirty, so the next fetch repairs instead of serving it
        state = AllocationState(mesh(3, 3, virtual_channels=1))
        engine = DistanceFieldEngine(state)
        origin = state.platform._node_ids["dsp_0_0"]

        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            with state.transaction():
                saturate_link(state, "r_0_0", "r_0_1")
                inside = engine.field(origin)
                while not inside.complete:
                    engine.ring(inside, len(inside.rings))
                raise Boom()
        after = engine.field(origin)
        while not after.complete:
            engine.ring(after, len(after.rings))
        fresh_engine = DistanceFieldEngine(state)
        fresh = fresh_engine.field(origin)
        while not fresh.complete:
            fresh_engine.ring(fresh, len(fresh.rings))
        assert after.rings == fresh.rings
        assert after.row == fresh.row

    def test_restore_invalidates_every_field(self):
        state = AllocationState(mesh(3, 3))
        engine = DistanceFieldEngine(state)
        origin = state.platform._node_ids["dsp_0_0"]
        engine.field(origin)
        misses = engine.stats.misses
        state.restore(state.snapshot())
        engine.field(origin)
        assert engine.stats.misses == misses + 1


class TestAcquireBypass:
    def _complete(self, engine, field):
        while not field.complete:
            engine.ring(field, len(field.rings))

    def test_repair_heavy_cycle_bypasses_then_commits_when_chronic(self):
        state = AllocationState(mesh(4, 4, virtual_channels=1))
        engine = DistanceFieldEngine(state)
        origin = state.platform._node_ids["dsp_0_0"]
        self._complete(engine, engine.field(origin))
        # sever this field's ring-1 tree edges: a repair would discard
        # nearly everything
        saturate_link(state, "r_0_0", "r_0_1")
        saturate_link(state, "r_0_0", "r_1_0")
        bypasses = engine.stats.bypasses
        for sighting in range(_STALE_LIMIT):
            assert engine.acquire((origin,)) is None
        assert engine.stats.bypasses == bypasses + _STALE_LIMIT
        # chronic staleness: once the dormancy controller lets a probe
        # cycle through, the repair is committed instead of re-bet
        from repro.core.distfield import _PROBE_INTERVAL

        served = None
        for _cycle in range(_PROBE_INTERVAL + 1):
            served = engine.acquire((origin,))
            if served is not None:
                break
        assert served is not None
        assert engine.stats.repairs >= 1

    def test_clean_and_cold_cycles_are_served(self):
        state = AllocationState(mesh(3, 3))
        engine = DistanceFieldEngine(state)
        ids = state.platform._node_ids
        first = engine.acquire((ids["dsp_0_0"],))
        assert first is not None and engine.stats.misses == 1
        again = engine.acquire((ids["dsp_0_0"], ids["dsp_2_2"]))
        assert again is not None
        assert engine.stats.hits == 1 and engine.stats.misses == 2


class TestRouterFastFail:
    def test_unreachable_probe_matches_path_search(self):
        platform = mesh(3, 3, virtual_channels=1)
        state = AllocationState(platform)
        engine = DistanceFieldEngine(state)
        # wall off dsp_0_0's router column by saturating its links
        saturate_link(state, "r_0_0", "r_0_1")
        saturate_link(state, "r_0_0", "r_1_0")
        origin = platform._node_ids["dsp_0_0"]
        target = platform._node_ids["dsp_2_2"]
        field = engine.field(origin)
        while not field.complete:
            engine.ring(field, len(field.rings))
        assert engine.unreachable(origin, target)
        assert BfsRouter().find_path_ids(state, origin, target, 1.0) is None
        # reachable pairs are never fast-failed
        router_neighbor = platform._node_ids["r_0_0"]
        assert not engine.unreachable(origin, router_neighbor)

    def test_stale_fields_answer_unknown(self):
        platform = mesh(3, 3, virtual_channels=1)
        state = AllocationState(platform)
        engine = DistanceFieldEngine(state)
        origin = platform._node_ids["dsp_0_0"]
        field = engine.field(origin)
        while not field.complete:
            engine.ring(field, len(field.rings))
        saturate_link(state, "r_1_1", "r_1_2")  # any flip staleness
        assert not engine.unreachable(
            origin, platform._node_ids["dsp_2_2"]
        )


class TestLockstep:
    def test_churn_digests_identical(self):
        pool = churn_pool(count=10, seed=0)
        config = ChurnConfig(steps=60, target_utilization=0.8, seed=0)
        inc = run_admission_churn(pool, mesh(8, 8), config, incremental=True)
        live = run_admission_churn(
            pool, mesh(8, 8), config, incremental=False
        )
        assert inc.layouts == live.layouts
        assert (inc.admitted, inc.rejected, inc.released) == (
            live.admitted, live.rejected, live.released
        )
        assert inc.distfield_stats["fetches"] > 0
        assert live.distfield_stats["fetches"] == 0

    @pytest.mark.parametrize("policy", ["reject", "fifo", "priority", "retry"])
    def test_service_traces_identical(self, policy):
        classes = default_traffic_classes(seed=4, rate_scale=6.0, pool_size=4)
        traces = []
        for incremental in (True, False):
            result = run_simulation(
                mesh(6, 6), classes, make_policy(policy),
                SimulationConfig(duration=40.0, seed=6),
                incremental=incremental,
            )
            traces.append(result.trace)
        assert traces[0] == traces[1]

    def test_service_traces_identical_under_faults(self):
        from repro.sim.service import scheduled_faults

        platform = mesh(6, 6)
        faults = scheduled_faults(platform, 2, 40.0, seed=9)
        classes = default_traffic_classes(seed=9, rate_scale=6.0, pool_size=4)
        traces = []
        for incremental in (True, False):
            result = run_simulation(
                platform, classes, make_policy("fifo"),
                SimulationConfig(duration=40.0, seed=9),
                faults=faults,
                incremental=incremental,
            )
            traces.append(result.trace)
        assert traces[0] == traces[1]
        # recovery resets are engine lifecycle, not decisions
        assert traces[0] is not None

    def test_recover_resets_the_engine(self):
        from repro.manager import Kairos

        manager = Kairos(mesh(4, 4), validation_mode="skip")
        pool = churn_pool(count=4, seed=2)
        for index, app in enumerate(pool):
            try:
                manager.allocate(app, f"a{index}")
            except Exception:
                break
        manager.state.fail_element("dsp_0_0")
        resets = manager.distfield_stats["resets"]
        manager.recover()
        assert manager.distfield_stats["resets"] == resets + 1

    def test_incremental_off_has_no_engine(self):
        from repro.manager import Kairos

        manager = Kairos(mesh(3, 3), validation_mode="skip", incremental=False)
        assert manager._distfield is None
        assert manager.distfield_stats["fetches"] == 0
