"""The binary-handler workflow of Section III-E.

"We specified a binary format for applications ... a new binary
handler can distinguish MPSoC applications from operating system
tools."  This scenario plays both sides: a *build machine* packs an
application specification (task graph + implementations + constraints)
into a ``.kair`` binary, and a *target* running Kairos sniffs incoming
binaries, loads the MPSoC ones and allocates them.

Run:  python examples/binary_deployment.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CostWeights, Kairos, beamforming_application, crisp
from repro.io import load_application, save_application, sniff


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        directory = Path(workdir)

        # --- build machine ------------------------------------------------
        app = beamforming_application()
        binary_path = directory / "beamformer.kair"
        save_application(app, binary_path)
        size = binary_path.stat().st_size
        print(f"packed {app.name!r}: {len(app)} tasks, "
              f"{len(app.channels)} channels -> {size} bytes")

        # an unrelated file that the handler must reject
        elf_path = directory / "ls"
        elf_path.write_bytes(b"\x7fELF\x02\x01\x01\x00" + b"\x00" * 56)

        # --- target -----------------------------------------------------------
        manager = Kairos(crisp(), weights=CostWeights(1.0, 1.0),
                         validation_mode="report")
        for path in sorted(directory.iterdir()):
            data = path.read_bytes()
            if not sniff(data):
                print(f"{path.name}: not a Kairos binary "
                      "(falls through to the OS loader)")
                continue
            loaded = load_application(path)
            loaded.validate()
            print(f"{path.name}: Kairos application {loaded.name!r} — "
                  "allocating")
            layout = manager.allocate(loaded)
            ms = layout.timings.as_milliseconds()
            print(f"  admitted: {len(layout.placement)} tasks placed, "
                  f"{len(layout.routes)} routes, "
                  f"total {sum(ms.values()):.1f} ms")
            satisfied = layout.validation.satisfied
            print(f"  constraints satisfied: {satisfied}")


if __name__ == "__main__":
    main()
