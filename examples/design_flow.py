"""The complete Fig. 1 flow: partitioning to bootstrapping.

The paper's Fig. 1 spans both sides of the design-time / run-time
boundary.  This scenario walks every box:

  design time:  partitioning   — cluster an operation graph into tasks
                (application specification, packed as a .kair binary)
  run time:     binding        — choose implementations
                mapping        — place tasks (the paper's algorithm)
                routing        — reserve NoC virtual channels
                validation     — SDF throughput analysis
                bootstrapping  — emit the configuration plan

Run:  python examples/design_flow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CostWeights, Kairos, crisp, generate_plan
from repro.io import load_application, save_application
from repro.partition import (
    Ceiling,
    partition_operations,
    partition_to_application,
    random_operation_graph,
)
from repro.viz import render_occupancy, render_placement


def main() -> None:
    # ---- design time -----------------------------------------------------
    operations = random_operation_graph(
        24, seed=11, cycles_range=(4, 18), memory_range=(0, 6),
        name="radar_frontend",
    )
    print(f"operation graph: {len(operations)} operations, "
          f"{len(operations.edges)} data edges, "
          f"{operations.total_cycles()} total cycles, "
          f"{operations.total_traffic():.0f} total traffic")

    ceiling = Ceiling(cycles=70, memory=24)  # a comfortable DSP-tile budget
    partition = partition_operations(operations, ceiling)
    print(f"partitioned into {len(partition.clusters)} tasks "
          f"(ceiling {ceiling.cycles} cycles / {ceiling.memory} memory); "
          f"cut traffic {partition.cut_traffic():.0f} "
          f"of {operations.total_traffic():.0f}")

    app = partition_to_application(partition, name="radar_frontend")
    app.validate()
    print(f"application specification: {app}")

    with tempfile.TemporaryDirectory() as workdir:
        binary = Path(workdir) / "radar_frontend.kair"
        save_application(app, binary)
        print(f"packed to {binary.name} ({binary.stat().st_size} bytes)")

        # ---- run time ------------------------------------------------------
        manager = Kairos(crisp(), weights=CostWeights(1.0, 1.0),
                         validation_mode="report")
        shipped = load_application(binary)
        layout = manager.allocate(shipped)

    print()
    print("per-phase timings (ms):",
          {k: round(v, 2) for k, v in layout.timings.as_milliseconds().items()})
    print(f"hops per channel: {layout.hops_per_channel():.2f}")
    verdict = "satisfied" if layout.validation.satisfied else "violated"
    note = (" (none declared -> vacuously satisfied)"
            if not layout.validation.checks else "")
    print(f"constraints: {verdict}{note}")
    print()
    print("placement on the die:")
    print(render_placement(manager.platform, layout.placement))
    print()
    print("occupancy:")
    print(render_occupancy(manager.state))
    print()
    plan = generate_plan(shipped, layout)
    print(f"bootstrap plan: {len(plan.loads())} loads, "
          f"{len(plan.routes())} routes, {len(plan.starts())} starts")


if __name__ == "__main__":
    main()
