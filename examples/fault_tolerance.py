"""Fault tolerance: surviving element failures by re-allocation.

The paper's opening motivation: run-time resource management exists
"to handle future changes in the application set, and to provide some
degree of fault tolerance, due to imperfect production processes and
wear of materials."  This scenario admits a handful of applications on
CRISP, then injects a deterministic campaign of DSP failures; after
each fault the manager identifies the stranded applications, releases
them and re-allocates on the degraded platform until the capacity is
genuinely gone.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro import CostWeights, GeneratorConfig, Kairos, crisp, generate
from repro.arch.faults import random_element_campaign, stranded_applications


def main() -> None:
    platform = crisp()
    manager = Kairos(platform, weights=CostWeights(1.0, 1.0),
                     validation_mode="skip")

    # admit five moderate applications
    specifications = {}
    for index in range(5):
        app = generate(
            GeneratorConfig(inputs=1, internals=4, outputs=1,
                            utilization_low=0.3, utilization_high=0.6,
                            pin_io_probability=0.5,
                            io_elements=("fpga", "arm")),
            seed=100 + index,
            name=f"stream{index}",
        )
        layout = manager.allocate(app, f"stream{index}")
        specifications[f"stream{index}"] = app
        print(f"admitted {layout.app_id} on "
              f"{sorted(set(layout.placement.values()))}")

    print()
    campaign = random_element_campaign(
        manager.state, count=12, seed=4, spare=("fpga", "arm"),
    )
    survived = lost = 0
    for round_index in range(len(campaign.faults)):
        fault = campaign.faults[round_index]
        victims = stranded_applications(manager.state, fault)
        campaign.inject_next(manager.state)
        if not victims:
            print(f"fault {round_index:>2}: {fault.target[0]:<14} "
                  "— nobody stranded")
            continue
        report = manager.recover(specifications)
        recovered = sorted(report.recovered)
        dead = sorted(report.lost)
        survived += len(recovered)
        lost += len(dead)
        print(f"fault {round_index:>2}: {fault.target[0]:<14} "
              f"stranded {list(victims)} -> recovered {recovered}"
              + (f", LOST {dead} ({'; '.join(report.lost.values())})"
                 if dead else ""))
        for app_id in dead:
            specifications.pop(app_id, None)

    print()
    print(f"campaign over: {len(manager.admitted)} applications still "
          f"running after {len(campaign.injected)} element faults "
          f"({survived} successful recoveries, {lost} lost)")
    print(f"degraded platform utilization: "
          f"{manager.utilization() * 100:.1f}%")


if __name__ == "__main__":
    main()
