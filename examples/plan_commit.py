"""Plan/commit: what-if admission probing with the repro.api façade.

Demonstrates the two-phase admission protocol of the
:class:`repro.api.AdmissionController`:

1. ``plan(app)`` runs binding → mapping → routing → validation inside
   a transaction and unwinds it — the returned epoch-stamped ``Plan``
   describes exactly what the platform *would* do, while holding no
   resources (probing is free);
2. ``commit(plan)`` applies the planned layout atomically when the
   capacity epoch is unchanged, and transparently **replans** when a
   concurrent admission moved it;
3. ``plan_batch([...])`` plans a whole batch in one pipeline pass and
   commits it with cheap mutation replays;
4. failures arrive as structured ``Decision``/``Plan`` objects with
   machine-readable ``ReasonCode``s — no exception handling.

Run:  python examples/plan_commit.py
"""

from __future__ import annotations

from repro import AdmissionController, GeneratorConfig, generate, mesh


def make_app(seed: int, internals: int = 4):
    return generate(
        GeneratorConfig(inputs=1, internals=internals, outputs=1,
                        utilization_low=0.2, utilization_high=0.5),
        seed=seed,
        name=f"job{seed}",
    )


def main() -> None:
    controller = AdmissionController(mesh(6, 6), validation_mode="skip")
    print(f"platform: {controller.platform}")

    # -- 1. a free what-if probe -------------------------------------------
    probe = controller.plan(make_app(1))
    print("\n== plan (no resources held) ==")
    print(probe.describe())
    print(f"platform utilization after planning: "
          f"{controller.manager.utilization():.1%}")

    # -- 2. commit at the unchanged epoch: cheap apply ----------------------
    decision = controller.commit(probe)
    print("\n== commit ==")
    print(f"admitted={decision.admitted} replanned={decision.replanned} "
          f"epoch={decision.epoch}")
    print(f"utilization now: {controller.manager.utilization():.1%}")

    # -- 3. a stale plan replans transparently ------------------------------
    stale = controller.plan(make_app(2), "stale-job")
    interloper = controller.admit(make_app(3), "interloper")
    print("\n== epoch conflict ==")
    print(f"planned at epoch {stale.epoch}, but '{interloper.app_id}' "
          f"moved the state to epoch {controller.state.epoch}")
    decision = controller.commit(stale)
    print(f"commit -> admitted={decision.admitted} "
          f"replanned={decision.replanned}")

    # -- 4. batch planning: one pipeline pass, cheap ordered commits --------
    batch = [make_app(seed) for seed in range(10, 16)]
    plans = controller.plan_batch(batch)
    print("\n== plan_batch ==")
    print(f"planned {len(plans)} applications in one pass; state untouched "
          f"(utilization {controller.manager.utilization():.1%})")
    decisions = controller.commit_batch(plans)
    admitted = sum(d.admitted for d in decisions)
    replans = sum(d.replanned for d in decisions)
    print(f"committed: {admitted}/{len(decisions)} admitted, "
          f"{replans} replans (ordered commits replay, never re-plan)")

    # -- 5. structured rejections ------------------------------------------
    monster = make_app(99, internals=200)
    verdict = controller.plan(monster)
    print("\n== structured rejection ==")
    print(f"{monster.name}: ok={verdict.ok} phase={verdict.phase} "
          f"code={verdict.code}")
    print(f"reason: {verdict.reason}")

    # -- teardown -----------------------------------------------------------
    controller.release_all()
    print(f"\nreleased everything: utilization "
          f"{controller.manager.utilization():.1%}")


if __name__ == "__main__":
    main()
