"""Continuous-time admission service: QoS queueing, faults, replay.

Where ``online_admission.py`` hand-rolls a fixed-step loop, this
example drives the real thing: the discrete-event admission service
of :mod:`repro.sim`.  Three traffic classes (interactive, batch,
bursty) arrive as Poisson/MMPP streams against a 6x6 mesh; two queue
policies are compared head to head; two element faults strike
mid-traffic and Kairos recovers the stranded applications
automatically; finally the recorded decision trace is replayed and
verified bit-identical.

Run:  python examples/service_simulation.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.sim import build_recipe, replay_trace, run_recipe


def describe(policy: str, result) -> None:
    summary = result.metrics.summary()
    waits = summary["admission_wait"]
    wait_text = ", ".join(
        f"{key} {value:.2f}" if value is not None else f"{key} n/a"
        for key, value in waits.items()
    )
    print(f"policy {policy:<8}: {summary['admitted']}/{summary['offered']} "
          f"admitted, blocking {summary['blocking_probability']:.3f}, "
          f"wait {wait_text}")
    for name, stats in summary["per_class"].items():
        print(f"    {name:<12} {stats['admitted']:>3}/{stats['offered']:<3} "
              f"({stats['admission_ratio']:.0%})")


def main() -> None:
    print("== queue policies under the same overloaded traffic ==")
    results = {}
    for policy in ("reject", "fifo", "retry"):
        recipe = build_recipe(
            platform="6x6", duration=60.0, seed=7, policy=policy,
            rate_scale=3.0, sample_interval=5.0,
        )
        results[policy] = run_recipe(recipe)
        describe(policy, results[policy])

    print()
    print("== faults mid-traffic, automatic recovery ==")
    recipe = build_recipe(
        platform="6x6", duration=60.0, seed=7, policy="fifo",
        rate_scale=3.0, faults=2,
    )
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "service_trace.jsonl"
        result = run_recipe(recipe, trace_path=trace_path)
        faults = result.metrics.summary()["faults"]
        print(f"injected {faults['injected']} element faults: "
              f"{faults['recovered']} applications re-placed, "
              f"{faults['lost']} lost")
        assert result.post_drain_utilization == 0.0
        print("drained platform ends at zero utilization")

        print()
        print("== deterministic trace replay ==")
        identical, differences, fresh = replay_trace(trace_path)
        print(f"recorded {len(result.trace)} decisions -> "
              f"{trace_path.name}; replay identical: {identical}")
        assert identical, differences


if __name__ == "__main__":
    main()
