"""Custom mapping objectives: energy, wear leveling, load balancing.

Paper Section III: "Various mapping objectives may be defined, like
minimal energy consumption, reducing resource fragmentation, wear
leveling, or load balancing", and the algorithm works with "any cost
function that can be defined for a platform".  This scenario runs the
same churn workload (applications arriving and leaving repeatedly)
under three cost functions and compares what each optimises:

* the paper default (communication + fragmentation),
* energy-aware (communication + energy),
* wear-levelled (communication + wear) — watch the wear spread drop.

Run:  python examples/custom_objectives.py
"""

from __future__ import annotations

from repro import CostWeights, GeneratorConfig, Kairos, MappingCost, crisp, generate
from repro.core import (
    CommunicationObjective,
    CompositeCost,
    EnergyObjective,
    WearLevelingObjective,
)


def churn(weights, rounds: int = 30):
    """Allocate/release a rotating set of small apps; report stats."""
    platform = crisp()
    manager = Kairos(platform, weights=weights, validation_mode="skip")
    apps = [
        generate(
            GeneratorConfig(inputs=1, internals=3, outputs=1,
                            utilization_low=0.3, utilization_high=0.6),
            seed=40 + index,
            name=f"churn{index}",
        )
        for index in range(4)
    ]
    hops = []
    for round_index in range(rounds):
        app = apps[round_index % len(apps)]
        layout = manager.allocate(app, f"r{round_index}")
        hops.append(layout.hops_per_channel())
        manager.release(layout.app_id)
    wear_values = sorted(
        (manager.state.wear(e) for e in platform.elements), reverse=True
    )
    dsp_wear = [
        manager.state.wear(e)
        for e in platform.elements if e.kind.value == "dsp"
    ]
    touched = sum(1 for w in wear_values if w > 0)
    return {
        "mean hops/channel": sum(hops) / len(hops),
        "elements ever used": touched,
        "max element wear": wear_values[0],
        "dsp wear spread (max-min)": max(dsp_wear) - min(dsp_wear),
    }


def main() -> None:
    configurations = {
        "paper default (comm+frag)": MappingCost(CostWeights(1.0, 1.0)),
        "energy-aware (comm+energy)": CompositeCost([
            CommunicationObjective(1.0),
            EnergyObjective(0.2),
        ]),
        "wear-levelled (comm+wear)": CompositeCost([
            CommunicationObjective(1.0),
            WearLevelingObjective(25.0),
        ]),
    }
    results = {name: churn(weights) for name, weights in configurations.items()}

    metrics = list(next(iter(results.values())))
    width = max(len(name) for name in results) + 2
    print(f"{'cost function':<{width}}" +
          "".join(f"{metric:>28}" for metric in metrics))
    for name, stats in results.items():
        print(f"{name:<{width}}" +
              "".join(f"{stats[metric]:>28.2f}" for metric in metrics))

    print()
    print("reading: wear leveling touches more elements and flattens the")
    print("per-tile wear spread, paying a modest hops premium; the paper")
    print("default concentrates allocations on the same favourite tiles.")


if __name__ == "__main__":
    main()
