"""A Fig. 2 style walk-through of the incremental mapping algorithm.

The paper's Fig. 2 shows the mapping state after each iteration of
MapApplication on a six-task application.  This example rebuilds that
situation — a six-task graph on a small grid — and prints, per
iteration: the task layer ``Ti``, the search origins, how many rings
the platform search expanded, and the layer's assignment.

Run:  python examples/worked_example.py
"""

from __future__ import annotations

from repro import Application, CostWeights, MappingCost, mesh
from repro.arch import AllocationState
from repro.binding import bind
from repro.core import map_application

# The example app of Fig. 2: six tasks, a hub-and-spokes-ish structure
# 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 5, 3 -> 6  (task 1 is the source)


def build_application() -> Application:
    from repro.apps import Implementation, Task
    from repro.arch import ElementType, ResourceVector

    app = Application("fig2")
    for name in ("t1", "t2", "t3", "t4", "t5", "t6"):
        app.add_task(Task(name, (Implementation(
            name=f"{name}_impl",
            requirement=ResourceVector(cycles=70, memory=8),
            execution_time=1.0,
            cost=1.0,
            target_kind=ElementType.DSP,
        ),)))
    app.connect("t1", "t2")
    app.connect("t1", "t3")
    app.connect("t2", "t4")
    app.connect("t3", "t5")
    app.connect("t3", "t6")
    return app


def main() -> None:
    app = build_application()
    platform = mesh(3, 3)
    state = AllocationState(platform)

    print("application: t1 -> (t2, t3); t2 -> t4; t3 -> (t5, t6)")
    print(f"platform: {platform}")
    print()

    binding = bind(app, state)
    result = map_application(
        app, binding.choice, state,
        cost=MappingCost(CostWeights(1.0, 1.0)),
    )

    print("i = 0 (anchor):")
    for task, element in sorted(result.anchors.items()):
        print(f"   {task} -> {element}   "
              "(min-degree task on the least-isolating element)")
    for layer in result.layers:
        print(f"i = {layer.index}:")
        print(f"   layer tasks Ti: {list(layer.tasks)}")
        print(f"   search origins: {list(layer.origins)}")
        print(f"   rings expanded: {layer.rings_searched}, "
              f"candidates found: {layer.candidates_found}, "
              f"GAP invocations: {layer.gap_invocations}")
        for task, element in sorted(layer.assignment.items()):
            print(f"   {task} -> {element}")

    print()
    print("final placement:")
    grid = {}
    for task, element in result.placement.items():
        grid[element] = task
    for row in range(3):
        cells = []
        for col in range(3):
            element = f"dsp_{row}_{col}"
            cells.append(f"{grid.get(element, '.'):^4}")
        print("   " + " ".join(cells))
    print()
    print(f"external fragmentation: {state.external_fragmentation():.1f}%")


if __name__ == "__main__":
    main()
