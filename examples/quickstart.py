"""Quickstart: allocate one application on the CRISP platform.

Builds the platform of the paper's Fig. 6, generates a small synthetic
streaming application, runs the four-phase allocation (binding,
mapping, routing, validation) and prints the resulting execution
layout, per-phase timings and platform metrics.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CostWeights,
    GeneratorConfig,
    Kairos,
    crisp,
    generate,
    generate_plan,
)


def main() -> None:
    # the platform of record: 1 ARM + 1 FPGA + 5 packages of
    # 9 DSPs / 2 memories / 1 test unit
    platform = crisp()
    print(f"platform: {platform}")

    # a small synthetic application with I/O pinned to the FPGA/ARM
    app = generate(
        GeneratorConfig(
            inputs=1, internals=4, outputs=1,
            utilization_low=0.2, utilization_high=0.5,
            pin_io_probability=1.0, io_elements=("fpga", "arm"),
        ),
        seed=7,
        name="quickstart_app",
    )
    print(f"application: {app}")

    # the resource manager with both mapping objectives enabled
    manager = Kairos(platform, weights=CostWeights(1.0, 1.0),
                     validation_mode="report")

    layout = manager.allocate(app)
    print()
    print(layout.describe())
    print()
    print("per-phase timings (ms):",
          {k: round(v, 2) for k, v in layout.timings.as_milliseconds().items()})
    if layout.validation and layout.validation.throughput:
        reference = next(iter(layout.placement))
        print(f"throughput at {reference}: "
              f"{layout.validation.throughput.of(reference):.4f} firings/s")
    print(f"platform fragmentation: {manager.external_fragmentation():.1f}%")
    print(f"platform utilization:   {manager.utilization() * 100:.1f}%")

    # the bootstrapping phase: an ordered hardware-configuration plan
    plan = generate_plan(app, layout)
    print()
    print(plan.as_script())

    manager.release(layout.app_id)
    print()
    print(f"after release: utilization {manager.utilization() * 100:.1f}%")


if __name__ == "__main__":
    main()
