"""Online admission: applications arriving and leaving at run time.

The scenario the paper motivates in its introduction: "at design-time,
it is unknown when, and what combinations of applications are
requested to be executed."  A stream of start/stop requests hits the
resource manager; we track admissions, rejections (by phase), external
fragmentation and utilization over time, and show how departures free
capacity for applications that were previously rejected.

Run:  python examples/online_admission.py
"""

from __future__ import annotations

import random

from repro import AllocationFailure, CostWeights, Kairos, crisp, make_dataset
from repro.apps.datasets import DatasetSpec


def main() -> None:
    rng = random.Random(2026)
    platform = crisp()
    manager = Kairos(platform, weights=CostWeights(1.0, 1.0),
                     validation_mode="skip")

    # a mixed workload pool: small/medium communication + computation
    pool = (
        make_dataset(DatasetSpec("communication", "small"), count=15, seed=1)
        + make_dataset(DatasetSpec("computation", "small"), count=15, seed=2)
        + make_dataset(DatasetSpec("communication", "medium"), count=10, seed=3)
    )
    rng.shuffle(pool)

    running: list[str] = []
    admitted = rejected = departed = 0
    retry_queue = []

    print(f"{'step':>4}  {'event':<26} {'running':>7} {'util %':>6} "
          f"{'frag %':>6}")
    for step in range(60):
        # departures become likelier as the platform fills
        if running and rng.random() < 0.35:
            app_id = running.pop(rng.randrange(len(running)))
            manager.release(app_id)
            departed += 1
            event = f"stop  {app_id.split('#')[0][:20]}"
        else:
            app = retry_queue.pop(0) if retry_queue and rng.random() < 0.5 \
                else pool[step % len(pool)]
            try:
                layout = manager.allocate(app)
            except AllocationFailure as failure:
                rejected += 1
                retry_queue.append(app)
                event = f"REJECT {app.name[:16]} ({failure.phase.value})"
            else:
                running.append(layout.app_id)
                admitted += 1
                event = f"start {app.name[:20]}"
        print(f"{step:>4}  {event:<26} {len(running):>7} "
              f"{manager.utilization() * 100:>6.1f} "
              f"{manager.external_fragmentation():>6.1f}")

    print()
    print(f"admitted {admitted}, rejected {rejected}, departed {departed}; "
          f"{len(running)} still running")
    print(f"final utilization {manager.utilization() * 100:.1f}%, "
          f"fragmentation {manager.external_fragmentation():.1f}%")

    # drain: everything releases cleanly
    for app_id in running:
        manager.release(app_id)
    assert manager.utilization() == 0.0
    print("drained: all resources returned")


if __name__ == "__main__":
    main()
