"""The Section IV-A case study: a 53-task beamformer on CRISP.

Reproduces the paper's narrative end to end:

1. allocate the beamformer (it needs all 45 DSPs — "a difficult
   mapping problem") and print the per-phase timing breakdown next to
   the paper's numbers;
2. show that disabling either mapping objective loses the admission
   (the Fig. 10 observation), by retrying with communication-only,
   fragmentation-only and disabled cost functions;
3. sweep a small weight grid and render the admission map.

Run:  python examples/beamforming_case_study.py
"""

from __future__ import annotations

from repro import AllocationFailure, CostWeights, Kairos, beamforming_application, crisp
from repro.experiments import PAPER_CASE_STUDY_MS, format_fig10, run_fig10


def allocate_once(platform, weights: CostWeights) -> str:
    manager = Kairos(platform, weights=weights, validation_mode="report")
    app = beamforming_application()
    try:
        layout = manager.allocate(app)
    except AllocationFailure as failure:
        return f"REJECTED in {failure.phase.value}"
    ms = layout.timings.as_milliseconds()
    hops = layout.hops_per_channel()
    manager.release(layout.app_id)
    return (
        f"admitted — binding {ms['binding']:.1f} ms, "
        f"mapping {ms['mapping']:.1f} ms, routing {ms['routing']:.1f} ms, "
        f"validation {ms['validation']:.1f} ms, {hops:.2f} hops/channel"
    )


def main() -> None:
    platform = crisp()
    app = beamforming_application()
    print(f"beamformer: {len(app)} tasks, {len(app.channels)} channels "
          f"(45 DSP-bound tasks on a 45-DSP platform)")
    print()

    print("paper (200 MHz ARM926):",
          ", ".join(f"{k} {v} ms" for k, v in PAPER_CASE_STUDY_MS.items()))
    print("this host, both objectives:",
          allocate_once(platform, CostWeights(1.0, 1.0)))
    print()

    print("objective sensitivity (the Fig. 10 observation):")
    for label, weights in (
        ("none         (0, 0)", CostWeights(0.0, 0.0)),
        ("communication(1, 0)", CostWeights(1.0, 0.0)),
        ("fragmentation(0, 1)", CostWeights(0.0, 1.0)),
        ("both         (1, 1)", CostWeights(1.0, 1.0)),
    ):
        print(f"  {label}: {allocate_once(platform, weights)}")
    print()

    print("admission map over a coarse weight grid "
          "(full grid: REPRO_FIG10_COMM_STEP=1 REPRO_FIG10_FRAG_STEP=10):")
    result = run_fig10(
        comm_weights=(0, 1, 2, 5, 10, 25),
        frag_weights=(0, 10, 50, 100, 400, 1000),
        platform=platform,
    )
    print(format_fig10(result))


if __name__ == "__main__":
    main()
